package core

// Tests for the PAPI-layer span-trace instrumentation: the papi.start
// span whose duration is the setup cost in sim time, the papi.stop
// instant, degrade.<kind> instants mirroring every ladder action, and
// the papi.read.degraded/clean transition instants (emitted on quality
// flips, not per read).

import (
	"testing"

	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/workload"
)

// tracedSim returns a RaptorLake sim with an enabled recorder attached
// to the whole stack.
func tracedSim(t *testing.T) (*sim.Machine, *spantrace.Recorder) {
	t.Helper()
	s := newSim(hw.RaptorLake())
	rec := spantrace.New(spantrace.Config{TrackCapacity: 1 << 14})
	rec.Enable()
	s.SetTracer(rec)
	return s, rec
}

// papiEvents returns the events on the "papi" track, in snapshot order.
func papiEvents(rec *spantrace.Recorder) []spantrace.Event {
	snap := rec.Snapshot()
	var out []spantrace.Event
	for _, ev := range snap.Events {
		if snap.TrackNames[ev.Track] == "papi" {
			out = append(out, ev)
		}
	}
	return out
}

func countNamed(evs []spantrace.Event, name string) int {
	n := 0
	for _, ev := range evs {
		if ev.Name == name {
			n++
		}
	}
	return n
}

func firstNamed(t *testing.T, evs []spantrace.Event, name string) spantrace.Event {
	t.Helper()
	for _, ev := range evs {
		if ev.Name == name {
			return ev
		}
	}
	t.Fatalf("no %q event on the papi track: %+v", name, evs)
	return spantrace.Event{}
}

// TestStartStopTraceEvents pins the clean lifecycle: one papi.start
// span (err=ok, group count in args) and one papi.stop instant.
func TestStartStopTraceEvents(t *testing.T) {
	s, rec := tracedSim(t)
	l := initLib(t, s, Options{})

	loop := workload.NewInstructionLoop("traced", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.AddNamed("adl_grt::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.1)
	if _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}

	evs := papiEvents(rec)
	start := firstNamed(t, evs, "papi.start")
	if start.Phase != spantrace.PhaseSpan {
		t.Fatalf("papi.start phase = %v, want span", start.Phase)
	}
	var groups float64
	var errStr string
	for _, a := range start.Args {
		switch a.Key {
		case "groups":
			groups = a.FVal
		case "err":
			errStr = a.SVal
		}
	}
	if groups != 2 {
		t.Fatalf("papi.start groups arg = %v, want 2 (one per PMU)", groups)
	}
	if errStr != "ok" {
		t.Fatalf("papi.start err arg = %q, want ok", errStr)
	}
	stop := firstNamed(t, evs, "papi.stop")
	if stop.Phase != spantrace.PhaseInstant {
		t.Fatalf("papi.stop phase = %v, want instant", stop.Phase)
	}
	if stop.StartSec < start.StartSec+start.DurSec {
		t.Fatalf("papi.stop at %v before papi.start span end %v",
			stop.StartSec, start.StartSec+start.DurSec)
	}
}

// TestBusyRetryTraceSpan drives rung 1 under a transient watchdog hold
// and checks the start span covers the backoff (nonzero duration in
// sim time) and each retry emits a degrade.busy-retry instant.
func TestBusyRetryTraceSpan(t *testing.T) {
	s, rec := tracedSim(t)
	l := initLib(t, s, Options{})
	pmu := s.HW.Types[0].PMU.PerfType

	s.Kernel.SetWatchdog(pmu, true)
	s.Kernel.AttachFaults(faults.NewPlan(faults.Event{
		AtSec: s.Now() + 3*s.Tick(), Kind: faults.KindWatchdogRelease, PMU: pmu,
	}))

	loop := workload.NewInstructionLoop("busy", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("adl_glc::CPU_CLK_UNHALTED:THREAD"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	defer es.Cleanup()

	evs := papiEvents(rec)
	start := firstNamed(t, evs, "papi.start")
	if start.DurSec <= 0 {
		t.Fatalf("papi.start span duration = %v, want > 0 (EBUSY backoff burns ticks)", start.DurSec)
	}
	retries := countNamed(evs, "degrade.busy-retry")
	if retries == 0 {
		t.Fatal("no degrade.busy-retry instants despite the watchdog hold")
	}
	if got := es.Degradations().BusyRetries; retries != got {
		t.Fatalf("degrade.busy-retry instants = %d, DegradationReport says %d", retries, got)
	}
	// The instants carry the running tallies.
	ev := firstNamed(t, evs, "degrade.busy-retry")
	found := false
	for _, a := range ev.Args {
		if a.Key == "busy_retries" && a.IsNum && a.FVal >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("degrade.busy-retry missing busy_retries tally: %+v", ev.Args)
	}
	es.StopValues()
}

// TestDeferredStartTraceInstant: with retry disabled the EBUSY start
// surfaces as a failed papi.start span plus a degrade.deferred-start
// instant.
func TestDeferredStartTraceInstant(t *testing.T) {
	s, rec := tracedSim(t)
	l := initLib(t, s, Options{})
	pmu := s.HW.Types[0].PMU.PerfType
	s.Kernel.SetWatchdog(pmu, true)

	loop := workload.NewInstructionLoop("deferred", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	es.AddNamed("adl_glc::CPU_CLK_UNHALTED:THREAD")
	es.SetStartRetry(-1)
	if err := es.Start(); err == nil {
		t.Fatal("Start succeeded under a held watchdog with retry disabled")
	}

	evs := papiEvents(rec)
	if countNamed(evs, "degrade.deferred-start") != 1 {
		t.Fatalf("want 1 degrade.deferred-start instant: %+v", evs)
	}
	start := firstNamed(t, evs, "papi.start")
	for _, a := range start.Args {
		if a.Key == "err" && a.SVal == "ok" {
			t.Fatal("failed papi.start span annotated err=ok")
		}
	}
	s.Kernel.SetWatchdog(pmu, false)
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	es.StopValues()
	es.Cleanup()
}

// TestMultiplexFallbackTraceInstant drives rung 2 and checks the
// degrade.multiplex-fallback instant plus the read-quality transition
// pair: degraded while multiplexed, and nothing emitted per read.
func TestMultiplexFallbackTraceInstant(t *testing.T) {
	s, rec := tracedSim(t)
	l := initLib(t, s, Options{})
	pmu := s.HW.Types[0].PMU.PerfType
	s.Kernel.SetCounterBudget(pmu, 2)

	loop := workload.NewInstructionLoop("squeezed", 1e9, 2000)
	p := s.Spawn(loop, hw.NewCPUSet(s.HW.CPUsOfClass(hw.Performance)...))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	for _, n := range []string{
		"adl_glc::INST_RETIRED:ANY",
		"adl_glc::CPU_CLK_UNHALTED:THREAD_P",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
		"adl_glc::MEM_INST_RETIRED:ALL_LOADS",
	} {
		if err := es.AddNamed(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if evs := papiEvents(rec); countNamed(evs, "degrade.multiplex-fallback") != 1 {
		t.Fatalf("want 1 degrade.multiplex-fallback instant: %+v", evs)
	}

	s.RunFor(0.5)
	for i := 0; i < 5; i++ {
		if _, err := es.ReadValues(); err != nil {
			t.Fatal(err)
		}
	}
	evs := papiEvents(rec)
	// Five degraded reads, ONE transition instant: quality is edge- not
	// level-triggered, so a per-tick probe cannot flood the ring.
	if n := countNamed(evs, "papi.read.degraded"); n != 1 {
		t.Fatalf("papi.read.degraded instants = %d, want exactly 1", n)
	}
	es.StopValues()
	es.Cleanup()
}

// TestReadQualityRecoversClean pins the full transition cycle: degraded
// under a watchdog steal, then one papi.read.clean when reads recover
// after the release.
func TestReadQualityRecoversClean(t *testing.T) {
	s, rec := tracedSim(t)
	l := initLib(t, s, Options{})
	pmu := s.HW.Types[0].PMU.PerfType

	loop := workload.NewInstructionLoop("steal", 1e9, 4000)
	p := s.Spawn(loop, hw.NewCPUSet(s.HW.CPUsOfClass(hw.Performance)...))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("adl_glc::CPU_CLK_UNHALTED:THREAD"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.1)
	if _, err := es.ReadValues(); err != nil {
		t.Fatal(err)
	}

	// Steal the cycles counter: the group deschedules, reads degrade.
	s.Kernel.SetWatchdog(pmu, true)
	s.RunFor(0.1)
	vals, err := es.ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if !vals[0].Degraded {
		t.Skipf("read not degraded under watchdog hold: %+v", vals[0])
	}
	s.Kernel.SetWatchdog(pmu, false)
	s.RunFor(0.1)
	if _, err := es.ReadValues(); err != nil {
		t.Fatal(err)
	}

	evs := papiEvents(rec)
	if countNamed(evs, "papi.read.degraded") != 1 {
		t.Fatalf("want 1 papi.read.degraded: %+v", evs)
	}
	if countNamed(evs, "papi.read.clean") != 1 {
		t.Fatalf("want 1 papi.read.clean after release: %+v", evs)
	}
	deg := firstNamed(t, evs, "papi.read.degraded")
	clean := firstNamed(t, evs, "papi.read.clean")
	if clean.StartSec <= deg.StartSec {
		t.Fatalf("clean at %v not after degraded at %v", clean.StartSec, deg.StartSec)
	}
	es.StopValues()
	es.Cleanup()
}

// TestHotplugRebuildTraceInstant drives rung 3 and checks the
// degrade.hotplug-rebuild instant fires when the RAPL descriptor is
// rebuilt on a surviving CPU.
func TestHotplugRebuildTraceInstant(t *testing.T) {
	s, rec := tracedSim(t)
	l := initLib(t, s, Options{})

	loop := workload.NewInstructionLoop("hotplugged", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("rapl::ENERGY_PKG"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.2)
	s.SetCPUOnline(0, false)
	s.RunFor(0.2)
	if _, err := es.ReadValues(); err != nil {
		t.Fatal(err)
	}
	if n := countNamed(papiEvents(rec), "degrade.hotplug-rebuild"); n != 1 {
		t.Fatalf("degrade.hotplug-rebuild instants = %d, want 1", n)
	}
	s.SetCPUOnline(0, true)
	es.StopValues()
	es.Cleanup()
}

// TestTraceDisabledEmitsNothing pins the guard: with the recorder
// disabled (or detached) the whole lifecycle emits zero papi events.
func TestTraceDisabledEmitsNothing(t *testing.T) {
	s, rec := tracedSim(t)
	rec.Disable()
	l := initLib(t, s, Options{})

	loop := workload.NewInstructionLoop("silent", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.05)
	if _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}
	if evs := papiEvents(rec); len(evs) != 0 {
		t.Fatalf("disabled recorder captured %d papi events: %+v", len(evs), evs)
	}
}
