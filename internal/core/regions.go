package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// HL is the high-level region API, mirroring PAPI_hl_region_begin /
// PAPI_hl_region_read / PAPI_hl_region_end: named calipers over one shared
// EventSet, with per-region accumulation and a formatted report. This is
// the "caliper your source code" capability the paper names as PAPI's key
// advantage over the perf tool, wrapped for casual use.
type HL struct {
	lib *Library
	es  *EventSet

	names  []string // event display names
	open   map[string][]uint64
	openAt map[string]float64
	totals map[string]*RegionStats
	order  []string
	closed bool
}

// RegionStats accumulates one region's measurements.
type RegionStats struct {
	// Count is how many Begin/End pairs completed.
	Count int
	// Values are the summed event deltas, in the event order of the HL
	// instance.
	Values []uint64
	// Seconds is the summed simulated time inside the region.
	Seconds float64
}

// NewHL creates a high-level instance measuring the given presets (default:
// PAPI_TOT_INS and PAPI_TOT_CYC) on the process, and starts counting.
func (l *Library) NewHL(pid int, presets ...Preset) (*HL, error) {
	if len(presets) == 0 {
		presets = []Preset{PresetTotIns, PresetTotCyc}
	}
	es := l.CreateEventSet()
	if err := es.Attach(pid); err != nil {
		return nil, err
	}
	for _, p := range presets {
		if err := es.AddPreset(p); err != nil {
			return nil, err
		}
	}
	if err := es.Start(); err != nil {
		return nil, err
	}
	return &HL{
		lib:    l,
		es:     es,
		names:  es.Names(),
		open:   map[string][]uint64{},
		openAt: map[string]float64{},
		totals: map[string]*RegionStats{},
	}, nil
}

// Begin opens a region. Overlapping different regions is fine; re-entering
// an already-open region is an error (matching PAPI_hl semantics).
func (h *HL) Begin(region string) error {
	if h.closed {
		return fmt.Errorf("%w: high-level instance closed", ErrInvalid)
	}
	if _, dup := h.open[region]; dup {
		return fmt.Errorf("%w: region %q already open", ErrInvalid, region)
	}
	vals, err := h.es.Read()
	if err != nil {
		return err
	}
	h.open[region] = vals
	h.openAt[region] = h.lib.sys.Now()
	return nil
}

// End closes a region and accumulates its deltas.
func (h *HL) End(region string) error {
	if h.closed {
		return fmt.Errorf("%w: high-level instance closed", ErrInvalid)
	}
	start, ok := h.open[region]
	if !ok {
		return fmt.Errorf("%w: region %q not open", ErrInvalid, region)
	}
	vals, err := h.es.Read()
	if err != nil {
		return err
	}
	delete(h.open, region)
	st := h.totals[region]
	if st == nil {
		st = &RegionStats{Values: make([]uint64, len(vals))}
		h.totals[region] = st
		h.order = append(h.order, region)
	}
	for i := range vals {
		if vals[i] >= start[i] {
			st.Values[i] += vals[i] - start[i]
		}
	}
	st.Count++
	st.Seconds += h.lib.sys.Now() - h.openAt[region]
	delete(h.openAt, region)
	return nil
}

// Stats returns the accumulated statistics of a region, or nil.
func (h *HL) Stats(region string) *RegionStats { return h.totals[region] }

// Regions returns the region names in first-End order.
func (h *HL) Regions() []string {
	return append([]string(nil), h.order...)
}

// EventNames returns the measured event names.
func (h *HL) EventNames() []string {
	return append([]string(nil), h.names...)
}

// Report renders a per-region table like the PAPI high-level JSON output,
// as fixed-width text.
func (h *HL) Report() string {
	var b strings.Builder
	header := append([]string{"region", "count", "seconds"}, h.names...)
	widths := make([]int, len(header))
	for i, hd := range header {
		widths[i] = len(hd)
	}
	rows := [][]string{}
	regions := append([]string(nil), h.order...)
	sort.Strings(regions)
	for _, r := range regions {
		st := h.totals[r]
		row := []string{r, fmt.Sprintf("%d", st.Count), fmt.Sprintf("%.3f", st.Seconds)}
		for _, v := range st.Values {
			row = append(row, fmt.Sprintf("%d", v))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		rows = append(rows, row)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// WriteJSON emits the accumulated regions in the style of PAPI's
// high-level papi_hl_output report: one object per region with the event
// values keyed by event name.
func (h *HL) WriteJSON(w io.Writer) error {
	type regionJSON struct {
		Region  string            `json:"region"`
		Count   int               `json:"count"`
		Seconds float64           `json:"real_time_sec"`
		Events  map[string]uint64 `json:"events"`
	}
	regions := append([]string(nil), h.order...)
	sort.Strings(regions)
	out := struct {
		Regions []regionJSON `json:"regions"`
	}{}
	for _, r := range regions {
		st := h.totals[r]
		ev := map[string]uint64{}
		for i, name := range h.names {
			if i < len(st.Values) {
				ev[name] = st.Values[i]
			}
		}
		out.Regions = append(out.Regions, regionJSON{
			Region: r, Count: st.Count, Seconds: st.Seconds, Events: ev,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Close stops and releases the underlying EventSet. Open regions are
// discarded.
func (h *HL) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	if _, err := h.es.Stop(); err != nil {
		return err
	}
	return h.es.Cleanup()
}
