package core

// Section IV.E ends with a caution: "Care needs to be taken that the
// enhanced event support does not break existing multiplexing support."
// These tests exercise exactly that interaction: multiplexed EventSets
// spanning both core-type PMUs plus RAPL.

import (
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestMultiplexedHybridEventSet(t *testing.T) {
	cfg := hw.RaptorLake()
	s := newSim(cfg)
	l := initLib(t, s, Options{})

	loop := workload.NewInstructionLoop("w", 1e6, 4000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))

	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.SetMultiplex(); err != nil {
		t.Fatal(err)
	}
	// 12 P events + 7 E events + RAPL: multiplexing on the P PMU (12 > 11
	// counters), free-running on the E PMU, and a CPU-wide energy event,
	// all in one EventSet.
	names := []string{
		"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES", "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
		"adl_glc::LONGEST_LAT_CACHE:REFERENCE", "adl_glc::LONGEST_LAT_CACHE:MISS",
		"adl_glc::MEM_INST_RETIRED:ALL_LOADS", "adl_glc::MEM_INST_RETIRED:ALL_STORES",
		"adl_glc::CYCLE_ACTIVITY:STALLS_TOTAL", "adl_glc::UOPS_RETIRED:SLOTS",
		"adl_glc::TOPDOWN:SLOTS", "adl_glc::L2_RQSTS:ALL_DEMAND_DATA_RD",
		"adl_grt::INST_RETIRED:ANY", "adl_grt::CPU_CLK_UNHALTED:CORE",
		"adl_grt::BR_INST_RETIRED:ALL_BRANCHES", "adl_grt::LONGEST_LAT_CACHE:REFERENCE",
		"adl_grt::LONGEST_LAT_CACHE:MISS", "adl_grt::MEM_UOPS_RETIRED:ALL_LOADS",
		"adl_grt::TOPDOWN_RETIRING:ALL",
		"rapl::ENERGY_PKG",
	}
	for _, n := range names {
		if err := es.AddNamed(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if es.NumGroups() != len(names) {
		t.Fatalf("multiplexed groups = %d, want one per event", es.NumGroups())
	}
	if got := len(es.GroupPMUTypes()); got != 3 {
		t.Fatalf("distinct PMU types = %d, want 3 (glc, grt, rapl)", got)
	}
	if !s.RunUntil(loop.Done, 120) {
		t.Fatal("workload did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	defer es.Cleanup()

	// A genuine hybrid-multiplexing trap, modeled faithfully: for a task
	// that migrates between core types, an event's enabled time accrues
	// whenever the task runs (on any core type) while its running time
	// only accrues on matching cores. Multiplex scaling therefore
	// extrapolates each PMU's rate across the WHOLE run, overestimating —
	// one reason the paper's authors are wary of mixing the enhanced
	// multi-PMU support with multiplexing (end of section IV.E). The sum
	// of scaled estimates must bound the true total from above, and by a
	// factor reflecting the rate extrapolation, not a small error.
	total := loop.TotalInstructions()
	sum := float64(vals[0] + vals[12])
	if sum < total {
		t.Errorf("scaled P+E instructions %g below true total %g; scaling should overestimate for migrating tasks", sum, total)
	}
	if sum > 3*total {
		t.Errorf("scaled P+E instructions %g implausibly far above true total %g", sum, total)
	}
	if vals[len(vals)-1] == 0 {
		t.Error("energy did not accumulate in the multiplexed hybrid set")
	}
	// Every event should have counted something on a migrating workload
	// except possibly the tiny-scale ones; spot check the cache events.
	for _, idx := range []int{4, 5, 15, 16} {
		if vals[idx] == 0 {
			t.Errorf("event %d (%s) counted nothing", idx, names[idx])
		}
	}
}

func TestReattachEventSetToAnotherProcess(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	a := workload.NewInstructionLoop("a", 1e6, 200)
	b := workload.NewInstructionLoop("b", 1e6, 400)
	pa := s.Spawn(a, hw.NewCPUSet(0))
	pb := s.Spawn(b, hw.NewCPUSet(2))

	es := l.CreateEventSet()
	es.Attach(pa.PID)
	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(a.Done, 60)
	valsA, _ := es.Stop()
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}

	// Re-attach the same EventSet to the second process and measure again.
	if err := es.Attach(pb.PID); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(b.Done, 60)
	valsB, _ := es.Stop()
	es.Cleanup()

	if valsA[0] != 200e6 {
		t.Errorf("first process counted %d, want 200e6", valsA[0])
	}
	// The fresh descriptors start at zero; process B retires what remains
	// of its 400 reps after running concurrently with A.
	if valsB[0] == 0 || valsB[0] > 400e6 {
		t.Errorf("second process counted %d", valsB[0])
	}
}
