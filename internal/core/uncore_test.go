package core

// Tests for uncore PMU support: section V.3 of the paper argues that once
// EventSets can span perf PMUs, the separate PAPI perf_event_uncore
// component can be retired — uncore events simply join a combined
// EventSet. Legacy mode keeps the old separate-component behaviour.

import (
	"errors"
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/workload"
)

func TestUncoreJoinsCombinedEventSet(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	stream := workload.NewStream("mem", 5e8, 0.8, 1)
	p := s.Spawn(stream, hw.NewCPUSet(0))

	es := l.CreateEventSet()
	es.Attach(p.PID)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(es.AddNamed("adl_glc::LONGEST_LAT_CACHE:MISS"))
	must(es.AddNamed("adl_imc::UNC_M_CAS_COUNT:RD"))
	must(es.AddNamed("adl_imc::UNC_M_CAS_COUNT:WR"))
	must(es.AddNamed("rapl::ENERGY_PKG"))
	must(es.Start())
	if !s.RunUntil(stream.Done, 60) {
		t.Fatal("stream did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	llcMiss, casRD, casWR := float64(vals[0]), float64(vals[1]), float64(vals[2])
	if llcMiss <= 0 || casRD <= 0 || casWR <= 0 {
		t.Fatalf("counts: llc=%v casRD=%v casWR=%v", vals[0], vals[1], vals[2])
	}
	// Read CAS tracks LLC misses with the prefetch overshoot factor.
	ratio := casRD / llcMiss
	if ratio < 1.1 || ratio > 1.3 {
		t.Errorf("CAS_RD / LLC_MISS = %.3f, want ~1.18", ratio)
	}
	if casWR >= casRD {
		t.Error("write CAS should be below read CAS")
	}
	must(es.Cleanup())
	if s.Kernel.NumOpen() != 0 {
		t.Fatal("fds leaked")
	}
}

func TestUncoreCountsAllCoreTypes(t *testing.T) {
	// An uncore counter must observe memory traffic from BOTH core types
	// — it has no core-type gate.
	m := hw.RaptorLake()
	s := newSim(m)
	l := initLib(t, s, Options{})
	streamP := workload.NewStream("memP", 2e8, 0.8, 1)
	streamE := workload.NewStream("memE", 2e8, 0.8, 2)
	s.Spawn(streamP, hw.NewCPUSet(0))  // P-core
	s.Spawn(streamE, hw.NewCPUSet(16)) // E-core

	es := l.CreateEventSet()
	if err := es.AddNamed("adl_imc::UNC_M_CAS_COUNT:RD"); err != nil {
		t.Fatal(err)
	}
	// An uncore-only EventSet needs no process attachment.
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(func() bool { return streamP.Done() && streamE.Done() }, 60)
	all, _ := es.Stop()
	es.Cleanup()

	// Re-run with only the P stream; the count must drop by roughly half.
	s2 := newSim(m)
	l2 := initLib(t, s2, Options{})
	streamP2 := workload.NewStream("memP", 2e8, 0.8, 1)
	s2.Spawn(streamP2, hw.NewCPUSet(0))
	es2 := l2.CreateEventSet()
	es2.AddNamed("adl_imc::UNC_M_CAS_COUNT:RD")
	es2.Start()
	s2.RunUntil(streamP2.Done, 60)
	pOnly, _ := es2.Stop()
	es2.Cleanup()

	if all[0] <= pOnly[0] {
		t.Fatalf("uncore with both streams (%d) should exceed P-only (%d)", all[0], pOnly[0])
	}
	ratio := float64(all[0]) / float64(pOnly[0])
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("both/one stream CAS ratio = %.2f, want ~2", ratio)
	}
}

func TestUncoreLegacySeparateComponent(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{Legacy: true})
	es := l.CreateEventSet()
	es.Attach(1000)
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	// Legacy PAPI: uncore lives in perf_event_uncore, not the cpu
	// component — mixing conflicts.
	if err := es.AddNamed("adl_imc::UNC_M_CAS_COUNT:RD"); !errors.Is(err, ErrConflict) {
		t.Fatalf("legacy cpu+uncore mix: err = %v, want ErrConflict", err)
	}
	// An uncore-only legacy EventSet still works (the old component).
	es2 := l.CreateEventSet()
	if err := es2.AddNamed("adl_imc::UNC_M_CAS_COUNT:RD"); err != nil {
		t.Fatal(err)
	}
	if err := es2.Start(); err != nil {
		t.Fatal(err)
	}
	es2.Stop()
	es2.Cleanup()
}

func TestUncoreComponentExclusivity(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	es1 := l.CreateEventSet()
	es1.AddNamed("adl_imc::UNC_M_CAS_COUNT:RD")
	if err := es1.Start(); err != nil {
		t.Fatal(err)
	}
	es2 := l.CreateEventSet()
	es2.AddNamed("adl_imc::UNC_M_ACT_COUNT")
	if err := es2.Start(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second uncore set: err = %v, want ErrConflict", err)
	}
	es1.Stop()
	if err := es2.Start(); err != nil {
		t.Fatal(err)
	}
	es2.Stop()
	es1.Cleanup()
	es2.Cleanup()
}

func TestUncoreKernelRequiresCPUWide(t *testing.T) {
	m := hw.RaptorLake()
	s := newSim(m)
	def := events.LookupPMU("adl_imc").Lookup("UNC_M_CAS_COUNT")
	attr := perfevent.Attr{Type: 24, Config: events.Encode(def.Code, def.Umasks[0].Bits)}
	if _, err := s.Kernel.Open(attr, 100, -1, -1); !errors.Is(err, perfevent.ErrInvalid) {
		t.Fatalf("task-attached uncore: err = %v, want EINVAL", err)
	}
	if _, err := s.Kernel.Open(attr, -1, 0, -1); err != nil {
		t.Fatalf("cpu-wide uncore: %v", err)
	}
	// Unknown uncore config.
	bad := perfevent.Attr{Type: 24, Config: 0xFFFF}
	if _, err := s.Kernel.Open(bad, -1, 0, -1); !errors.Is(err, perfevent.ErrNotSupported) {
		t.Fatalf("bad uncore config: err = %v", err)
	}
}

func TestArmMachinesHaveNoUncore(t *testing.T) {
	s := newSim(hw.OrangePi800())
	l := initLib(t, s, Options{})
	es := l.CreateEventSet()
	if err := es.AddNamed("adl_imc::UNC_M_CAS_COUNT:RD"); !errors.Is(err, ErrNoEvent) {
		t.Fatalf("imc on ARM: err = %v, want ErrNoEvent", err)
	}
}
