package scenario

// White-box tests that each standard invariant actually detects the
// violation it exists for. The machines are healthy, so the tests corrupt
// the invariant's view (its private state, or the hardware spec it reads
// its bounds from) and assert the check fires.

import (
	"strings"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/sched"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func bootFor(t *testing.T, machine string) *sim.Machine {
	t.Helper()
	s, err := Boot(Spec{Name: "invariant-test", Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantViolation(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("invariant passed, want violation containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("violation %q does not contain %q", err, substr)
	}
}

func TestTimeMonotonicDetectsDrift(t *testing.T) {
	s := bootFor(t, "homogeneous")
	s.Step()
	inv := &timeMonotonic{}
	ctx := &Context{Sim: s, PrevNowSec: s.Now() - s.Tick()}
	if err := inv.Check(ctx); err != nil {
		t.Fatalf("one-tick advance flagged: %v", err)
	}
	ctx.PrevNowSec = s.Now()
	wantViolation(t, inv.Check(ctx), "backwards")
	ctx.PrevNowSec = s.Now() - 2*s.Tick()
	wantViolation(t, inv.Check(ctx), "want one tick")
}

func TestCounterMonotonicDetectsDecrease(t *testing.T) {
	s := bootFor(t, "homogeneous")
	ws, err := openWide(s)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.close(s)
	ctx := &Context{Sim: s, Wide: ws.events}
	inv := &counterMonotonic{}
	if err := inv.Check(ctx); err != nil {
		t.Fatalf("clean machine flagged: %v", err)
	}
	// Pretend the first counter had already reached an enormous value.
	inv.prevCounters[ws.events[0].FD] = 1 << 60
	wantViolation(t, inv.Check(ctx), "decreased")
}

func TestEnergyConservationDetectsLeak(t *testing.T) {
	s := bootFor(t, "homogeneous")
	s.RunFor(0.05) // accrue real package energy
	inv := energyConservation{}
	// Harness that never integrated power: the RAPL counter moved, the
	// integral did not.
	ctx := &Context{Sim: s, StartEnergyJ: 0, PowerIntegralJ: 0}
	wantViolation(t, inv.Check(ctx), "J !=")
	// A consistent view passes.
	ctx.StartEnergyJ = s.Power.EnergyJ(0)
	if err := inv.Check(ctx); err != nil {
		t.Fatalf("consistent view flagged: %v", err)
	}
}

func TestCoreTypeIsolationDetectsCrossCount(t *testing.T) {
	s := bootFor(t, "homogeneous")
	ws, err := openWide(s)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.close(s)
	s.Spawn(workload.NewInstructionLoop("loop", 1e6, 100), hw.NewCPUSet(0))
	s.RunFor(0.05)
	inv := coreTypeIsolation{}
	// Misfile cpu0's own (counting) instruction event as a foreign probe:
	// the invariant must reject any nonzero "foreign" count.
	ctx := &Context{Sim: s, Foreign: ws.events[:1]}
	wantViolation(t, inv.Check(ctx), "counted")
}

func TestSchedAffinityDetectsEscape(t *testing.T) {
	s := bootFor(t, "homogeneous")
	p := s.Spawn(workload.NewSpin("spin", 10), hw.NewCPUSet(0))
	s.RunFor(0.01)
	if p.CPU() != 0 {
		t.Fatalf("spin on cpu%d, want cpu0", p.CPU())
	}
	// Shrink the mask out from under the running process; until the next
	// scheduler pass it is on a CPU outside its affinity.
	if err := s.Sched.SetAffinity(p.PID, hw.NewCPUSet(1)); err != nil {
		t.Fatal(err)
	}
	inv := schedAffinity{}
	ctx := &Context{Sim: s, Procs: []*sched.Process{p}}
	wantViolation(t, inv.Check(ctx), "outside affinity")
	// The scheduler's next pass repairs the placement.
	s.RunFor(0.01)
	if err := inv.Check(ctx); err != nil {
		t.Fatalf("post-enforcement state flagged: %v", err)
	}
}

func TestFreqEnvelopeDetectsCapBreach(t *testing.T) {
	s := bootFor(t, "homogeneous")
	fe := &freqEnvelope{}
	ctx := &Context{Sim: s}
	if err := fe.Check(ctx); err != nil {
		t.Fatalf("boot state flagged: %v", err)
	}
	// A cap far below the running frequency: the first check after the
	// drop is forgiven (one-tick control-loop lag), the next is not.
	s.Governor.SetUserCapMHz(hw.Performance, 100)
	if err := fe.Check(ctx); err != nil {
		t.Fatalf("lag tick flagged: %v", err)
	}
	wantViolation(t, fe.Check(ctx), "above the")
}

func TestThermalBoundsDetectsExcursion(t *testing.T) {
	s := bootFor(t, "homogeneous")
	inv := thermalBounds{}
	ctx := &Context{Sim: s}
	if err := inv.Check(ctx); err != nil {
		t.Fatalf("boot state flagged: %v", err)
	}
	saved := s.HW.Thermal
	s.HW.Thermal.TjMaxC = s.Thermal.TempC() - 5
	wantViolation(t, inv.Check(ctx), "above TjMax")
	s.HW.Thermal = saved
	s.HW.Thermal.AmbientC = s.Thermal.TempC() + 5
	wantViolation(t, inv.Check(ctx), "below ambient")
}

func TestPowerSanityDetectsImpossiblePower(t *testing.T) {
	s := bootFor(t, "homogeneous")
	s.RunFor(0.01)
	inv := &powerSanity{}
	ctx := &Context{Sim: s}
	if err := inv.Check(ctx); err != nil {
		t.Fatalf("idle machine flagged: %v", err)
	}
	// Raise the claimed uncore floor above what the model produces.
	s.HW.Power.UncoreWatts = 1e6
	wantViolation(t, inv.Check(ctx), "uncore floor")
}

func TestStandardReturnsFreshInstances(t *testing.T) {
	a, b := Standard(), Standard()
	if len(a) < 6 {
		t.Fatalf("Standard() returned %d invariants, want at least 6", len(a))
	}
	// The stateful invariants must not share state across calls (empty
	// structs may legitimately alias, so only check one that holds state).
	var ca, cb *counterMonotonic
	for i := range a {
		if m, ok := a[i].(*counterMonotonic); ok {
			ca = m
		}
		if m, ok := b[i].(*counterMonotonic); ok {
			cb = m
		}
	}
	if ca == nil || cb == nil || ca == cb {
		t.Fatalf("Standard() must return fresh counter-monotonic instances (got %p, %p)", ca, cb)
	}
	names := map[string]bool{}
	for _, inv := range a {
		if names[inv.Name()] {
			t.Fatalf("duplicate invariant name %q", inv.Name())
		}
		names[inv.Name()] = true
	}
}
