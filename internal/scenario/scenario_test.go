package scenario_test

import (
	"errors"
	"strings"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
)

// TestReferenceScenariosClean runs every committed reference scenario and
// asserts the full standard invariant set holds. The subtests run in
// parallel on purpose: under -race this also exercises concurrent harness
// runs against independent machines.
func TestReferenceScenariosClean(t *testing.T) {
	for _, spec := range scenario.Reference() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			res, err := scenario.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Errorf("did not complete within %.0fs", spec.MaxSeconds)
			}
			if len(res.Samples) < 2 {
				t.Errorf("only %d trace samples", len(res.Samples))
			}
			if res.EnergyJ <= 0 {
				t.Errorf("energy %.3f J, want > 0", res.EnergyJ)
			}
			var instr float64
			for _, tc := range res.ByType {
				instr += tc.Instructions
			}
			if instr <= 0 {
				t.Error("no instructions counted by the system-wide events")
			}
		})
	}
}

func TestVerifyDeterminism(t *testing.T) {
	spec := scenario.Spec{
		Name:            "det",
		Machine:         "dimensity9000",
		Seed:            7,
		MaxSeconds:      4,
		SamplePeriodSec: 0.25,
		Workloads: []scenario.WorkloadSpec{
			// Unpinned on a hybrid machine: placement flows through the
			// scheduler's seeded perturbation, the hardest case to keep
			// reproducible.
			{Kind: scenario.WorkloadLoop, Name: "roam", InstrPerRep: 1e6, Reps: 2000},
		},
		VerifyDeterminism: true,
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeterminismVerified {
		t.Error("DeterminismVerified not set after a verified run")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) string {
		t.Helper()
		res, err := scenario.Run(scenario.Spec{
			Name:            "seed-sweep",
			Machine:         "raptorlake",
			Seed:            seed,
			MaxSeconds:      6,
			SamplePeriodSec: 0.25,
			Workloads: []scenario.WorkloadSpec{
				{Kind: scenario.WorkloadLoop, Name: "roam", InstrPerRep: 1e6, Reps: 4000},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest
	}
	if a, b := run(1), run(2); a == b {
		t.Errorf("seeds 1 and 2 produced identical digests (%s); scheduler perturbation not seeded?", a[:12])
	}
	if a, b := run(1), run(1); a != b {
		t.Errorf("same seed produced different digests: %s vs %s", a[:12], b[:12])
	}
}

func TestInjectFreqCapTakesEffect(t *testing.T) {
	const capMHz = 1200
	res, err := scenario.Run(scenario.Spec{
		Name:            "freq-cap",
		Machine:         "homogeneous",
		Seed:            1,
		MaxSeconds:      3,
		SamplePeriodSec: 0.1,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", CPUs: []int{0}, Seconds: 2},
		},
		Injects: []scenario.Inject{
			{AtSec: 1, Kind: scenario.InjectFreqCap, Class: hw.Performance, MHz: capMHz},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawFast bool
	for _, s := range res.Samples {
		f := s.FreqMHz[0]
		if s.TimeSec < 0.9 && f > capMHz+100 {
			sawFast = true
		}
		if s.TimeSec > 1.2 && f > capMHz+50+1e-9 { // half an OPP step of slack
			t.Errorf("t=%.1fs: cpu0 at %.0f MHz despite the %d MHz cap", s.TimeSec, f, capMHz)
		}
	}
	if !sawFast {
		t.Error("cpu0 never exceeded the cap before it was injected; test is vacuous")
	}
}

func TestInjectPowerLimitReducesEnergy(t *testing.T) {
	base := scenario.Spec{
		Name:            "power-limit",
		Machine:         "homogeneous",
		Seed:            1,
		MaxSeconds:      5,
		SamplePeriodSec: 0.5,
		Workloads: []scenario.WorkloadSpec{
			// One spin per physical core, so the package draws well above
			// the injected limit when unconstrained.
			{Kind: scenario.WorkloadSpin, Name: "spin0", CPUs: []int{0}, Seconds: 4},
			{Kind: scenario.WorkloadSpin, Name: "spin1", CPUs: []int{2}, Seconds: 4},
			{Kind: scenario.WorkloadSpin, Name: "spin2", CPUs: []int{4}, Seconds: 4},
			{Kind: scenario.WorkloadSpin, Name: "spin3", CPUs: []int{6}, Seconds: 4},
		},
	}
	free, err := scenario.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	capped := base
	capped.Injects = []scenario.Inject{
		{AtSec: 1, Kind: scenario.InjectPowerLimit, PL1W: 12, PL2W: 14},
	}
	limited, err := scenario.Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if limited.EnergyJ >= free.EnergyJ {
		t.Errorf("12 W-capped run used %.1f J, uncapped %.1f J; the power limit had no effect",
			limited.EnergyJ, free.EnergyJ)
	}
}

func TestInjectHeatTriggersThrottle(t *testing.T) {
	base := scenario.Spec{
		Name:            "heat",
		Machine:         "orangepi800",
		Seed:            1,
		MaxSeconds:      8,
		SamplePeriodSec: 0.25,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", CPUs: []int{4, 5}, Seconds: 6},
		},
	}
	cool, err := scenario.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	heated := base
	heated.Injects = []scenario.Inject{{AtSec: 1, Kind: scenario.InjectHeat, HeatJ: 30}}
	hot, err := scenario.Run(heated)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Summary.MaxTempC <= cool.Summary.MaxTempC {
		t.Errorf("heat injection did not raise the peak: %.1f C vs %.1f C",
			hot.Summary.MaxTempC, cool.Summary.MaxTempC)
	}
	// The step_wise throttle must pull the big cores below their max.
	var minBig = 1e18
	for _, s := range hot.Samples {
		if s.TimeSec > 1.5 && s.FreqMHz[4] < minBig {
			minBig = s.FreqMHz[4]
		}
	}
	if minBig >= 1800 {
		t.Errorf("big core never throttled below max (min observed %.0f MHz)", minBig)
	}
}

func TestInjectMigrateMovesWork(t *testing.T) {
	// A loop pinned to the LITTLE cluster is migrated to the prime core
	// mid-run: both core types' own-PMU instruction counters must move.
	countingTypes := func(injects []scenario.Inject) map[string]bool {
		t.Helper()
		res, err := scenario.Run(scenario.Spec{
			Name:            "migrate",
			Machine:         "dimensity9000",
			Seed:            1,
			MaxSeconds:      6,
			SamplePeriodSec: 0.5,
			Workloads: []scenario.WorkloadSpec{
				{Kind: scenario.WorkloadLoop, Name: "mover", CPUs: []int{0, 1, 2, 3}, InstrPerRep: 1e6, Reps: 4000},
			},
			Injects: injects,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for name, tc := range res.ByType {
			if tc.Instructions > 0 {
				got[name] = true
			}
		}
		return got
	}
	pinned := countingTypes(nil)
	if len(pinned) != 1 || !pinned["LITTLE"] {
		t.Fatalf("pinned run counted on %v, want only LITTLE", pinned)
	}
	moved := countingTypes([]scenario.Inject{
		{AtSec: 1, Kind: scenario.InjectMigrate, Workload: 0, CPUs: []int{7}},
	})
	if !moved["LITTLE"] || !moved["prime"] {
		t.Fatalf("migrated run counted on %v, want LITTLE and prime", moved)
	}
}

// TestPerturbedMachineChangesDigest is the golden mechanism's own
// regression test: a one-watt change to a power-model constant must
// produce a different behavior digest for the same scenario.
func TestPerturbedMachineChangesDigest(t *testing.T) {
	var spec scenario.Spec
	for _, ref := range scenario.Reference() {
		if ref.Name == "homogeneous-powercap" {
			spec = ref
			break
		}
	}
	if spec.Machine != "homogeneous" {
		t.Fatalf("homogeneous-powercap not found in Reference()")
	}
	base, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := spec
	perturbed.MachineFn = func() *hw.Machine {
		m := hw.Homogeneous()
		m.Power.UncoreWatts += 1
		return m
	}
	drifted, err := scenario.Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Digest == base.Digest {
		t.Error("a +1 W uncore perturbation left the behavior digest unchanged; the golden mechanism is blind")
	}
	if diff := scenario.GoldenOf(base).Diff(scenario.GoldenOf(drifted)); diff == "" {
		t.Error("Golden.Diff reports no difference for a perturbed run")
	}
}

func TestRunOnWarmMachine(t *testing.T) {
	spec := scenario.Spec{
		Name:            "warm",
		Machine:         "homogeneous",
		MaxSeconds:      3,
		SamplePeriodSec: 0.5,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", CPUs: []int{0}, Seconds: 1},
		},
	}
	s, err := scenario.Boot(spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := scenario.RunOn(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := scenario.RunOn(s, spec)
	if err != nil {
		t.Fatalf("second run on the warm machine: %v", err)
	}
	for _, res := range []*scenario.Result{first, second} {
		if !res.Completed || len(res.Violations) != 0 {
			t.Errorf("warm run %s: completed=%v violations=%v", res.Name, res.Completed, res.Violations)
		}
	}
}

// failing is a test invariant that violates on every tick and at the end.
type failing struct{}

func (failing) Name() string                  { return "always-fails" }
func (failing) Check(*scenario.Context) error { return errors.New("tick boom") }
func (failing) Final(*scenario.Context) error { return errors.New("final boom") }

func TestViolationsReportedOncePerInvariant(t *testing.T) {
	res, err := scenario.Run(scenario.Spec{
		Name:            "violating",
		Machine:         "homogeneous",
		MaxSeconds:      1,
		SamplePeriodSec: 0.5,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", CPUs: []int{0}, Seconds: 0.5},
		},
		Invariants: []scenario.Invariant{failing{}},
	})
	if err == nil {
		t.Fatal("Run returned nil error despite a failing invariant")
	}
	if res == nil {
		t.Fatal("Run must return the Result alongside the violation error")
	}
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want exactly 1 (first per invariant): %v", len(res.Violations), res.Violations)
	}
	v := res.Violations[0]
	if v.Invariant != "always-fails" || v.Detail != "tick boom" {
		t.Errorf("unexpected violation %+v", v)
	}
	if !strings.Contains(err.Error(), "tick boom") {
		t.Errorf("error %q does not carry the violation detail", err)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec scenario.Spec
		want string
	}{
		{"unknown machine", scenario.Spec{Name: "x", Machine: "pentium4"}, "unknown machine"},
		{"hpl without cpus", scenario.Spec{
			Name: "x", Machine: "homogeneous",
			Workloads: []scenario.WorkloadSpec{{Kind: scenario.WorkloadHPL, N: 256, NB: 32}},
		}, "explicit CPU list"},
		{"cpu out of range", scenario.Spec{
			Name: "x", Machine: "orangepi800",
			Workloads: []scenario.WorkloadSpec{{Kind: scenario.WorkloadSpin, Seconds: 1, CPUs: []int{99}}},
		}, "out of range"},
		{"unknown workload kind", scenario.Spec{
			Name: "x", Machine: "homogeneous",
			Workloads: []scenario.WorkloadSpec{{Kind: "fortran"}},
		}, "unknown kind"},
		{"migrate target out of range", scenario.Spec{
			Name: "x", Machine: "homogeneous",
			Workloads: []scenario.WorkloadSpec{{Kind: scenario.WorkloadSpin, Seconds: 1}},
			Injects:   []scenario.Inject{{AtSec: 1, Kind: scenario.InjectMigrate, Workload: 5, CPUs: []int{0}}},
		}, "migrate inject targets workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := scenario.Run(tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}
