package scenario_test

import (
	"testing"

	"hetpapi/internal/scenario"
	"hetpapi/internal/spantrace"
)

// refSpec fetches a reference scenario by name.
func refSpec(t *testing.T, name string) scenario.Spec {
	t.Helper()
	for _, spec := range scenario.Reference() {
		if spec.Name == name {
			return spec
		}
	}
	t.Fatalf("no reference scenario %q", name)
	return scenario.Spec{}
}

// tracedRun runs a reference scenario with a recorder attached and
// returns the snapshot. Durations in the trace carry wall-clock args
// (syscall service times), so assertions here stick to event names,
// categories and ordering — the deterministic part.
func tracedRun(t *testing.T, name string) (*scenario.Result, *spantrace.Snapshot) {
	t.Helper()
	spec := refSpec(t, name)
	rec := spantrace.New(spantrace.Config{TrackCapacity: 1 << 15})
	rec.Enable()
	spec.Tracer = rec
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.Snapshot()
}

// eventNames flattens the snapshot into time-ordered event names.
func eventNames(snap *spantrace.Snapshot) []string {
	out := make([]string, len(snap.Events))
	for i := range snap.Events {
		out[i] = snap.Events[i].Name
	}
	return out
}

// assertSubsequence checks that want appears in names in order (not
// necessarily adjacent).
func assertSubsequence(t *testing.T, names, want []string) {
	t.Helper()
	i := 0
	for _, n := range names {
		if i < len(want) && n == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("span sequence missing %q (matched %d of %v)", want[i], i, want)
	}
}

func count(names []string, name string) int {
	n := 0
	for _, s := range names {
		if s == name {
			n++
		}
	}
	return n
}

// TestTracedRunKeepsGoldenDigest pins the core guarantee: attaching a
// recorder is pure observation and must not change the run's behavior
// digest versus the committed golden trace.
func TestTracedRunKeepsGoldenDigest(t *testing.T) {
	res, _ := tracedRun(t, "biglittle-hotplug")
	golden, err := scenario.LoadGolden(scenario.GoldenPath("testdata/golden", res.Name))
	if err != nil {
		t.Fatal(err)
	}
	if diff := golden.Diff(scenario.GoldenOf(res)); diff != "" {
		t.Fatalf("tracing changed the run's golden digest:\n%s", diff)
	}
}

// TestHotplugFaultSpanSequence asserts the expected cross-layer span
// story of the biglittle-hotplug golden scenario: the t=0 counter steal
// holds the LITTLE watchdog so the probe's start defers with EBUSY;
// after the release the start succeeds; then CPU 1 is hotplugged off
// and back on.
func TestHotplugFaultSpanSequence(t *testing.T) {
	res, snap := tracedRun(t, "biglittle-hotplug")
	if !res.Completed {
		t.Fatalf("scenario did not complete: %+v", res.Violations)
	}
	names := eventNames(snap)
	assertSubsequence(t, names, []string{
		"run.start",
		"inject.counter-steal",
		"fault.watchdog-hold",
		"degrade.deferred-start",
		"inject.counter-release",
		"fault.watchdog-release",
		"papi.start",
		"inject.hotplug-off",
		"fault.hotplug-off",
		"inject.hotplug-on",
		"fault.hotplug-on",
	})
	if count(names, "papi.start") == 0 {
		t.Fatal("no papi.start span")
	}
	if got := count(names, "workload.spawn"); got != 1 {
		t.Errorf("workload.spawn count = %d, want 1", got)
	}
	// The run-level span closes the scenario track.
	if got := count(names, "run "+res.Name); got != 1 {
		t.Errorf("run span count = %d, want 1", got)
	}
	// Every event of the run carries its trace context.
	var ctx uint64
	for id, name := range snap.Contexts {
		if name == res.Name {
			ctx = id
		}
	}
	if ctx == 0 {
		t.Fatalf("no trace context named %q: %v", res.Name, snap.Contexts)
	}
	for i := range snap.Events {
		if snap.Events[i].Ctx != ctx {
			t.Fatalf("event %q at %v carries ctx %d, want %d",
				snap.Events[i].Name, snap.Events[i].StartSec, snap.Events[i].Ctx, ctx)
		}
	}
}

// TestWatchdogStealSpanSequence asserts the raptorlake watchdog-steal
// scenario's trace: a mid-run steal holds the P-core watchdog while
// the multiplexed probe is already running, and releases later. The
// run is shortened past the release (steal at 1.5s + 2s hold) so the
// t=0 open syscalls survive the kernel ring's wraparound window.
func TestWatchdogStealSpanSequence(t *testing.T) {
	spec := refSpec(t, "raptorlake-watchdog-steal")
	spec.MaxSeconds = 5
	rec := spantrace.New(spantrace.Config{TrackCapacity: 1 << 15})
	rec.Enable()
	spec.Tracer = rec
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	names := eventNames(snap)
	assertSubsequence(t, names, []string{
		"run.start",
		"papi.start",
		"inject.counter-steal",
		"fault.watchdog-hold",
		"fault.watchdog-release",
	})
	// The run-level span starts at t=0, so it sorts near the head of
	// the snapshot rather than the tail; assert presence, not order.
	if got := count(names, "run "+res.Name); got != 1 {
		t.Errorf("run span count = %d, want 1", got)
	}
	// During the steal the probe's cycles groups stop scheduling, so
	// the multiplexed reads turn into time-scaled estimates: the
	// read-quality transition must flip to degraded.
	if count(names, "papi.read.degraded") == 0 {
		t.Error("no papi.read.degraded transition")
	}
	// Syscall instants land on the kernel track with errno args. The
	// per-tick read flood wraps the kernel ring well past the t=0
	// opens, so assert on reads — the traffic that is always retained.
	sawRead := false
	for i := range snap.Events {
		ev := &snap.Events[i]
		if ev.Name == "sys.read" && ev.Cat == "syscall" {
			sawRead = true
			break
		}
	}
	if !sawRead {
		t.Error("no sys.read syscall instants recorded")
	}
	// The wraparound itself must be accounted: the kernel track's drop
	// counter is what the self-overhead report surfaces.
	if snap.Dropped["kernel"] == 0 {
		t.Error("kernel track flood did not record wrap drops")
	}
}
