package scenario_test

import (
	"fmt"

	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
)

// Example runs a minimal scenario: a two-second spin pinned to cpu0 of the
// homogeneous machine, under the full standard invariant set.
func Example() {
	res, err := scenario.Run(scenario.Spec{
		Name:            "example-spin",
		Machine:         "homogeneous",
		Seed:            1,
		MaxSeconds:      5,
		SamplePeriodSec: 0.5,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", CPUs: []int{0}, Seconds: 2},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("completed=%v violations=%d\n", res.Completed, len(res.Violations))
	fmt.Printf("spin done=%v after %.1fs\n", res.Workloads[0].Done, res.Workloads[0].ElapsedSec)
	// Output:
	// completed=true violations=0
	// spin done=true after 2.0s
}

// Example_injection shows mid-run event injection: a frequency cap dropped
// on the Performance-class cores one second into the run.
func Example_injection() {
	res, err := scenario.Run(scenario.Spec{
		Name:            "example-cap",
		Machine:         "homogeneous",
		Seed:            1,
		MaxSeconds:      4,
		SamplePeriodSec: 0.5,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", CPUs: []int{0}, Seconds: 3},
		},
		Injects: []scenario.Inject{
			{AtSec: 1, Kind: scenario.InjectFreqCap, Class: hw.Performance, MHz: 1200},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	last := res.Samples[len(res.Samples)-1]
	fmt.Printf("cpu0 ends at %.0f MHz under the 1200 MHz cap\n", last.FreqMHz[0])
	// Output:
	// cpu0 ends at 1200 MHz under the 1200 MHz cap
}
