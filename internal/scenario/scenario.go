// Package scenario is the declarative end-to-end harness for the simulated
// machines: a Spec names a machine model, a workload mix, scheduler/DVFS
// configuration, injected events (task migration, power caps, frequency
// caps, thermal ramps) and a set of invariant assertions; Run boots the
// machine, drives it under the paper's 1 Hz monitoring methodology and
// machine-checks every invariant on every tick and at end of run.
//
// The package exists so that correctness checking is written once: the
// experiment drivers in internal/exp, the examples and the regression
// tests all execute through the same harness, and every run — whether it
// regenerates a paper table or smoke-tests a refactor — is continuously
// audited for counter monotonicity, energy conservation, per-core-type
// event validity, affinity, DVFS envelopes and physical power/thermal
// bounds. Reference scenarios (scenarios.go) additionally pin golden trace
// digests under testdata/, so any behavioral drift in sim, sched, dvfs,
// power, thermal or perfevent fails `go test ./internal/scenario`.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"hetpapi/internal/core"
	"hetpapi/internal/dvfs"
	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/sched"
	"hetpapi/internal/sim"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/trace"
	"hetpapi/internal/workload"
)

// Machines maps the spec-addressable machine model names to their
// constructors. All presets of internal/hw are registered.
var Machines = map[string]func() *hw.Machine{
	"raptorlake":    hw.RaptorLake,
	"orangepi800":   hw.OrangePi800,
	"dimensity9000": hw.Dimensity9000,
	"homogeneous":   hw.Homogeneous,
}

// WorkloadKind selects a workload model.
type WorkloadKind string

// The workload kinds a spec can request.
const (
	// WorkloadHPL is the blocked-LU linpack model; one thread per entry
	// of CPUs, each pinned to its CPU.
	WorkloadHPL WorkloadKind = "hpl"
	// WorkloadLoop is a fixed instruction loop (the papi_hybrid test
	// program shape).
	WorkloadLoop WorkloadKind = "loop"
	// WorkloadSpin is a fixed-duration spin-wait.
	WorkloadSpin WorkloadKind = "spin"
	// WorkloadStream is the LLC-hostile memory streamer.
	WorkloadStream WorkloadKind = "stream"
	// WorkloadStride is the deterministic strided sweep whose cache
	// events follow from the machine geometry (workload.StrideRates) —
	// the validation suite's memory oracle.
	WorkloadStride WorkloadKind = "stride"
)

// WorkloadSpec declares one workload of a scenario. Unused parameter
// fields for the chosen Kind are ignored.
type WorkloadSpec struct {
	// Kind selects the workload model.
	Kind WorkloadKind
	// Name labels the workload in results (defaults to the kind).
	Name string
	// CPUs is the affinity pin list; empty means all CPUs. HPL spawns one
	// thread per listed CPU and requires a non-empty list.
	CPUs []int
	// StartSec delays the spawn into the run.
	StartSec float64

	// N, NB, Strategy and Seed parameterize WorkloadHPL.
	N, NB    int
	Strategy workload.Strategy
	Seed     int64

	// InstrPerRep and Reps parameterize WorkloadLoop.
	InstrPerRep float64
	Reps        int

	// Seconds parameterizes WorkloadSpin.
	Seconds float64

	// Instructions and LLCMissRate parameterize WorkloadStream.
	// Instructions also parameterizes WorkloadStride.
	Instructions float64
	LLCMissRate  float64

	// StrideBytes and FootprintKB parameterize WorkloadStride (together
	// with Instructions); the machine's LLCKB completes the geometry.
	StrideBytes int
	FootprintKB int
}

func (w *WorkloadSpec) label(i int) string {
	if w.Name != "" {
		return w.Name
	}
	return fmt.Sprintf("%s-%d", w.Kind, i)
}

// InjectKind selects a fault/event injection.
type InjectKind string

// The injections a spec can schedule.
const (
	// InjectMigrate rewrites the affinity of workload index Workload to
	// CPUs (the sched_setaffinity operation mid-run).
	InjectMigrate InjectKind = "migrate"
	// InjectPowerLimit rewrites the RAPL PL1/PL2 limits to PL1W/PL2W.
	InjectPowerLimit InjectKind = "power-limit"
	// InjectFreqCap sets the user frequency ceiling of core class Class
	// to MHz (0 removes it).
	InjectFreqCap InjectKind = "freq-cap"
	// InjectHeat dumps HeatJ joules into the thermal zone.
	InjectHeat InjectKind = "heat"
	// InjectCounterSteal models the NMI watchdog (or another kernel-side
	// consumer) grabbing a counter on every PMU of core class Class: new
	// cycles events fail with EBUSY on PMUs with a fixed cycles counter,
	// and already-running groups containing cycles stop being scheduled.
	// DurSec > 0 schedules the matching release automatically.
	InjectCounterSteal InjectKind = "counter-steal"
	// InjectHotplugOff takes CPU offline: its CPU-wide perf descriptors
	// die with ENODEV and its running task is evicted.
	InjectHotplugOff InjectKind = "hotplug-off"
	// InjectHotplugOn brings CPU back online (descriptors killed by a
	// previous offline stay dead; the harness reopens its own).
	InjectHotplugOn InjectKind = "hotplug-on"
	// InjectBufferPressure caps every sampling ring buffer at Cap
	// records, forcing overflow records to be dropped and counted lost.
	InjectBufferPressure InjectKind = "buffer-pressure"

	// injectCounterRelease is the internal event a DurSec-bounded
	// counter-steal expands into.
	injectCounterRelease InjectKind = "counter-release"
)

// Inject is one scheduled event of a scenario, applied at the first tick
// boundary at or after AtSec.
type Inject struct {
	AtSec float64
	Kind  InjectKind

	// Workload and CPUs parameterize InjectMigrate.
	Workload int
	CPUs     []int
	// PL1W and PL2W parameterize InjectPowerLimit.
	PL1W, PL2W float64
	// Class and MHz parameterize InjectFreqCap; Class also selects the
	// PMUs of InjectCounterSteal.
	Class hw.CoreClass
	MHz   float64
	// HeatJ parameterizes InjectHeat.
	HeatJ float64
	// DurSec bounds an InjectCounterSteal: the counter is released
	// DurSec after AtSec (0 = held for the rest of the run).
	DurSec float64
	// CPU parameterizes InjectHotplugOff/InjectHotplugOn.
	CPU int
	// Cap parameterizes InjectBufferPressure (records per ring).
	Cap int
}

// Spec declares a complete scenario.
type Spec struct {
	// Name identifies the scenario in results and golden files.
	Name string
	// Machine names a model in Machines; MachineFn, when set, overrides
	// the registry (used to run perturbed machine variants).
	Machine   string
	MachineFn func() *hw.Machine

	// TickSec overrides the simulation step (0 = sim default 1 ms).
	TickSec float64
	// SamplePeriodSec is the monitoring cadence (0 = the paper's 1 Hz).
	SamplePeriodSec float64
	// MaxSeconds bounds the run in simulated time (0 = 60 s). The run
	// ends earlier once every workload has finished.
	MaxSeconds float64
	// Seed seeds the scheduler perturbation RNG.
	Seed int64
	// Sched and DVFS override the subsystem configs (nil = defaults).
	// The seed in Sched, if set, takes precedence over Seed.
	Sched *sched.Config
	DVFS  *dvfs.Config

	// Workloads is the workload mix.
	Workloads []WorkloadSpec
	// Injects are the scheduled events, applied in AtSec order.
	Injects []Inject
	// Measure, when non-nil, attaches a PAPI-style EventSet probe to one
	// workload; its readings are audited every tick by the
	// reads-monotonic and scale-bounded invariants and its final values
	// and degradation report land in the Result (and the golden digest).
	Measure *MeasureSpec
	// Invariants are checked every tick and at end of run; nil means
	// Standard(). Use a non-nil empty slice to disable checking.
	Invariants []Invariant
	// StepHooks are observer callbacks fired after every completed tick,
	// in slice order, after the invariant audit for that tick (so hooks
	// see an already-checked machine state) and before injections and
	// delayed spawns reconfigure the next tick. Multiple harness layers
	// (telemetry collection, custom probes) register here side by side
	// with the audit; hooks must observe only and never step the machine.
	StepHooks []StepHook
	// Tracer, when non-nil, attaches the span recorder to the whole
	// machine stack for the run: the harness begins a per-run trace
	// context, emits run/inject/workload events on the "scenario"
	// track, and every layer below (core, perfevent, sim) records onto
	// its own tracks. Enable the recorder before Run; disabled or nil
	// recorders cost a few nanoseconds per instrumentation site.
	Tracer *spantrace.Recorder
	// Stop, when non-nil, is polled once per tick boundary; the run ends
	// early when it returns true (Result.Stopped is set and Completed is
	// false unless every workload had already finished). It is how a
	// long-running service cancels an in-flight scenario on shutdown.
	Stop func() bool
	// VerifyDeterminism makes Run execute the scenario twice on fresh
	// machines and fail unless both runs digest identically. Ignored by
	// RunOn (a warm machine is not reproducible from the spec alone).
	VerifyDeterminism bool
}

// Clone returns a deep copy of the spec that shares no mutable slices
// with the original: Workloads (including each workload's CPU pin list),
// Injects (including their CPU lists), StepHooks, Invariants and the
// Measure spec all get fresh backing arrays. Harnesses that expand one
// template Spec into many machines (the fleet generator) clone per
// machine, so appending a StepHook or rewriting a CPU list on one
// machine can never alias into another running on a different worker.
//
// Two reference-typed fields are copied by reference and need care when
// a template fans out: Invariant instances hold per-run state (leave
// Invariants nil so every run builds a fresh Standard() set), and
// Tracer/Stop/MachineFn closures are shared as-is.
func (s Spec) Clone() Spec {
	out := s
	if s.Workloads != nil {
		out.Workloads = make([]WorkloadSpec, len(s.Workloads))
		for i, w := range s.Workloads {
			out.Workloads[i] = w
			out.Workloads[i].CPUs = append([]int(nil), w.CPUs...)
		}
	}
	if s.Injects != nil {
		out.Injects = make([]Inject, len(s.Injects))
		for i, inj := range s.Injects {
			out.Injects[i] = inj
			out.Injects[i].CPUs = append([]int(nil), inj.CPUs...)
		}
	}
	if s.StepHooks != nil {
		out.StepHooks = append([]StepHook(nil), s.StepHooks...)
	}
	if s.Invariants != nil {
		out.Invariants = append([]Invariant(nil), s.Invariants...)
	}
	if s.Measure != nil {
		m := *s.Measure
		m.Events = append([]string(nil), s.Measure.Events...)
		out.Measure = &m
	}
	if s.Sched != nil {
		c := *s.Sched
		out.Sched = &c
	}
	if s.DVFS != nil {
		c := *s.DVFS
		out.DVFS = &c
	}
	return out
}

// TypeCounters holds system-wide counter totals for one core type, the
// per-PMU split a "perf stat -a" run reports on a hybrid machine.
type TypeCounters struct {
	Instructions float64
	Cycles       float64
	LLCRefs      float64
	LLCMisses    float64
}

// MissRate returns LLC misses / references (0 when idle).
func (c TypeCounters) MissRate() float64 {
	if c.LLCRefs == 0 {
		return 0
	}
	return c.LLCMisses / c.LLCRefs
}

// WorkloadResult reports one workload's outcome.
type WorkloadResult struct {
	// Name and Kind echo the spec.
	Name string
	Kind WorkloadKind
	// Done reports whether the workload finished within MaxSeconds.
	Done bool
	// ElapsedSec is spawn-to-finish (or spawn-to-end-of-run) time.
	ElapsedSec float64
	// Gflops is the HPL figure of merit (HPL workloads that finished).
	Gflops float64
}

// Violation is one invariant failure.
type Violation struct {
	// AtSec is the simulated time of the failure (-1 for end-of-run
	// checks).
	AtSec float64
	// Invariant is the failing invariant's name.
	Invariant string
	// Detail is the failure description.
	Detail string
}

func (v Violation) String() string {
	if v.AtSec < 0 {
		return fmt.Sprintf("[final] %s: %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("[t=%.3fs] %s: %s", v.AtSec, v.Invariant, v.Detail)
}

// Result is the outcome of a scenario run.
type Result struct {
	// Name and MachineName echo the resolved spec.
	Name        string
	MachineName string
	// Completed reports whether every workload finished within
	// MaxSeconds.
	Completed bool
	// ElapsedSec is the simulated duration of the run.
	ElapsedSec float64
	// Samples is the monitoring trace.
	Samples []trace.Sample
	// Summary condenses the trace.
	Summary trace.Summary
	// ByType holds the per-core-type system-wide counter deltas.
	ByType map[string]TypeCounters
	// Workloads holds per-workload outcomes, in spec order.
	Workloads []WorkloadResult
	// EnergyJ is the package energy consumed over the run.
	EnergyJ float64
	// MeasureFinal holds the probe's final degradation-aware values, in
	// Spec.Measure.Events order (nil without a Measure spec).
	MeasureFinal []core.Value
	// Degradations is the probe's degradation report (nil without a
	// Measure spec).
	Degradations *core.DegradationReport
	// Digest is the stable hash of the run's observable behavior (trace,
	// counters, workload outcomes); see Result.computeDigest.
	Digest string
	// Stopped reports that Spec.Stop ended the run early.
	Stopped bool
	// Violations lists every invariant failure (at most one per
	// invariant; checking stops for an invariant once it has failed).
	Violations []Violation
	// DeterminismVerified reports that VerifyDeterminism ran and passed.
	DeterminismVerified bool
}

// computeDigest hashes everything a golden trace pins: the full monitoring
// trace (via the canonical CSV rendering), the per-type counters, the
// workload outcomes and the energy total. Counter values are rounded to
// integers and scalars fixed to millidigits so the digest is a property of
// machine behavior, not float formatting.
func (r *Result) computeDigest(ncpu int) string {
	h := sha256.New()
	fmt.Fprintf(h, "trace %s\n", trace.DigestSamples(ncpu, r.Samples))
	names := make([]string, 0, len(r.ByType))
	for name := range r.ByType {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := r.ByType[name]
		fmt.Fprintf(h, "type %s %.0f %.0f %.0f %.0f\n",
			name, c.Instructions, c.Cycles, c.LLCRefs, c.LLCMisses)
	}
	for _, w := range r.Workloads {
		fmt.Fprintf(h, "workload %s %s done=%v elapsed=%.3f gflops=%.3f\n",
			w.Name, w.Kind, w.Done, w.ElapsedSec, w.Gflops)
	}
	fmt.Fprintf(h, "energy %.3f\n", r.EnergyJ)
	if r.Degradations != nil {
		for i, v := range r.MeasureFinal {
			fmt.Fprintf(h, "measure %d final=%d raw=%d scaled=%d stale=%v degraded=%v\n",
				i, v.Final, v.Raw, v.Scaled, v.Stale, v.Degraded)
		}
		d := r.Degradations
		fmt.Fprintf(h, "degradations busy=%d deferred=%d mux=%d rebuilds=%d stale=%d clamps=%d\n",
			d.BusyRetries, d.DeferredStarts, d.MultiplexFallback, d.HotplugRebuilds,
			d.StaleReads, d.MonotonicClamps)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Err returns a single error summarizing the run's violations, or nil.
func (r *Result) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q: %d invariant violation(s):", r.Name, len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// StepHook observes a scenario run after each completed tick, with the
// same post-tick Context the invariants check. The harness calls every
// registered hook once per tick, after the invariant audit and before the
// tick's injections and delayed spawns are applied.
type StepHook func(*Context)

// Run boots a fresh machine from the spec and executes the scenario. The
// returned error is non-nil when the spec is invalid, a workload cannot be
// built, or any invariant was violated; the Result is returned alongside
// the error whenever the run itself happened.
func Run(spec Spec) (*Result, error) {
	res, err := runFresh(spec)
	if err != nil {
		return res, err
	}
	if spec.VerifyDeterminism {
		again, err := runFresh(spec)
		if err != nil {
			return res, fmt.Errorf("scenario %q: determinism re-run: %w", spec.Name, err)
		}
		if again.Digest != res.Digest {
			return res, fmt.Errorf("scenario %q: nondeterministic: digest %s vs %s on identical specs",
				spec.Name, res.Digest[:12], again.Digest[:12])
		}
		res.DeterminismVerified = true
	}
	return res, res.Err()
}

func runFresh(spec Spec) (*Result, error) {
	s, err := Boot(spec)
	if err != nil {
		return nil, err
	}
	return runOn(s, spec)
}

// Boot builds and boots the spec's machine without running the scenario,
// for callers that want to interleave harness runs with direct machine
// control (the settle-between-runs protocol).
func Boot(spec Spec) (*sim.Machine, error) {
	mk := spec.MachineFn
	if mk == nil {
		var ok bool
		mk, ok = Machines[spec.Machine]
		if !ok {
			return nil, fmt.Errorf("scenario %q: unknown machine %q", spec.Name, spec.Machine)
		}
	}
	m := mk()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	cfg := sim.DefaultConfig()
	if spec.TickSec > 0 {
		cfg.TickSec = spec.TickSec
	}
	if spec.Sched != nil {
		cfg.Sched = *spec.Sched
	}
	if spec.Sched == nil || spec.Sched.Seed == 0 {
		cfg.Sched.Seed = spec.Seed
	}
	if spec.DVFS != nil {
		cfg.DVFS = *spec.DVFS
	}
	return sim.New(m, cfg), nil
}

// RunOn executes the scenario on an already-booted (possibly warm)
// machine. The spec's Machine/TickSec/Sched/DVFS fields are ignored — the
// machine's own configuration governs — and VerifyDeterminism is not
// supported because the starting state is not reproducible from the spec.
func RunOn(s *sim.Machine, spec Spec) (*Result, error) {
	res, err := runOn(s, spec)
	if err != nil {
		return res, err
	}
	return res, res.Err()
}

// spawnedWorkload tracks one WorkloadSpec's live state during a run.
type spawnedWorkload struct {
	spec  *WorkloadSpec
	hpl   *workload.HPL
	tasks []workload.Task
	procs []*sched.Process

	spawned   bool
	startedAt float64
	doneAt    float64
}

func (sw *spawnedWorkload) done() bool {
	if !sw.spawned {
		return false
	}
	if sw.hpl != nil {
		return sw.hpl.Done()
	}
	for _, t := range sw.tasks {
		if !t.Done() {
			return false
		}
	}
	return true
}

// build constructs the workload's tasks (without spawning them).
func (sw *spawnedWorkload) build(m *hw.Machine, label string) error {
	w := sw.spec
	switch w.Kind {
	case WorkloadHPL:
		if len(w.CPUs) == 0 {
			return fmt.Errorf("workload %s: HPL needs an explicit CPU list", label)
		}
		strat := w.Strategy
		if strat.Name == "" {
			strat = workload.OpenBLASx86()
		}
		h, err := workload.NewHPL(workload.HPLConfig{
			N: w.N, NB: w.NB, Threads: len(w.CPUs), Strategy: strat, Seed: w.Seed,
		})
		if err != nil {
			return fmt.Errorf("workload %s: %w", label, err)
		}
		sw.hpl = h
		sw.tasks = h.Threads()
	case WorkloadLoop:
		sw.tasks = []workload.Task{workload.NewInstructionLoop(label, w.InstrPerRep, w.Reps)}
	case WorkloadSpin:
		sw.tasks = []workload.Task{workload.NewSpin(label, w.Seconds)}
	case WorkloadStream:
		sw.tasks = []workload.Task{workload.NewStream(label, w.Instructions, w.LLCMissRate, w.Seed)}
	case WorkloadStride:
		sw.tasks = []workload.Task{workload.NewStride(label, w.Instructions, w.StrideBytes, w.FootprintKB, m.LLCKB)}
	default:
		return fmt.Errorf("workload %s: unknown kind %q", label, w.Kind)
	}
	for _, cpu := range w.CPUs {
		if cpu < 0 || cpu >= m.NumCPUs() {
			return fmt.Errorf("workload %s: cpu %d out of range (machine has %d)", label, cpu, m.NumCPUs())
		}
	}
	return nil
}

func (sw *spawnedWorkload) spawn(s *sim.Machine, now float64) {
	w := sw.spec
	for i, task := range sw.tasks {
		var aff hw.CPUSet
		switch {
		case len(w.CPUs) == 0:
			aff = hw.AllCPUs(s.HW)
		case sw.hpl != nil:
			aff = hw.NewCPUSet(w.CPUs[i]) // one HPL thread per listed CPU
		default:
			aff = hw.NewCPUSet(w.CPUs...)
		}
		sw.procs = append(sw.procs, s.Spawn(task, aff))
	}
	sw.spawned = true
	sw.startedAt = now
	sw.doneAt = -1
}

func runOn(s *sim.Machine, spec Spec) (*Result, error) {
	maxSec := spec.MaxSeconds
	if maxSec <= 0 {
		maxSec = 60
	}
	period := spec.SamplePeriodSec
	if period <= 0 {
		period = 1
	}
	invariants := spec.Invariants
	if invariants == nil {
		invariants = Standard()
	}

	workloads := make([]*spawnedWorkload, len(spec.Workloads))
	for i := range spec.Workloads {
		workloads[i] = &spawnedWorkload{spec: &spec.Workloads[i]}
		if err := workloads[i].build(s.HW, spec.Workloads[i].label(i)); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
		}
	}
	for _, inj := range spec.Injects {
		switch inj.Kind {
		case InjectMigrate:
			if inj.Workload < 0 || inj.Workload >= len(workloads) {
				return nil, fmt.Errorf("scenario %q: migrate inject targets workload %d of %d",
					spec.Name, inj.Workload, len(workloads))
			}
		case InjectHotplugOff, InjectHotplugOn:
			if inj.CPU < 0 || inj.CPU >= s.HW.NumCPUs() {
				return nil, fmt.Errorf("scenario %q: %s inject targets cpu %d (machine has %d)",
					spec.Name, inj.Kind, inj.CPU, s.HW.NumCPUs())
			}
		}
	}
	injects := append([]Inject(nil), spec.Injects...)
	// A bounded counter-steal expands into its own release event.
	for _, inj := range spec.Injects {
		if inj.Kind == InjectCounterSteal && inj.DurSec > 0 {
			injects = append(injects, Inject{
				AtSec: inj.AtSec + inj.DurSec, Kind: injectCounterRelease, Class: inj.Class,
			})
		}
	}
	sort.SliceStable(injects, func(i, j int) bool { return injects[i].AtSec < injects[j].AtSec })

	// Attach tracing before the first syscall so the harness's own
	// system-wide opens land in the trace too.
	rt := beginRunTrace(s, &spec)

	wide, err := openWide(s)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	defer wide.close(s)

	start := s.Now()
	ctx := &Context{
		Sim:          s,
		Spec:         &spec,
		StartSec:     start,
		PrevNowSec:   start,
		StartEnergyJ: s.Power.EnergyJ(0),
		Wide:         wide.events,
		Foreign:      wide.foreign,
	}

	var probe *measureProbe
	if spec.Measure != nil {
		probe, err = newMeasureProbe(s, spec.Measure, len(workloads))
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
		}
		ctx.Measure = &probe.state
		defer probe.cleanup()
	}

	res := &Result{Name: spec.Name, MachineName: s.HW.Name}
	failed := map[string]bool{}
	report := func(atSec float64, inv Invariant, err error) {
		if err == nil || failed[inv.Name()] {
			return
		}
		failed[inv.Name()] = true
		res.Violations = append(res.Violations, Violation{
			AtSec: atSec, Invariant: inv.Name(), Detail: err.Error(),
		})
	}

	// Spawn the t=0 workloads before the recorder takes its first sample.
	for i, sw := range workloads {
		if sw.spec.StartSec <= 0 {
			sw.spawn(s, s.Now())
			rt.workload("workload.spawn", sw.spec.label(i), s.Now())
		}
	}
	for _, sw := range workloads {
		ctx.Procs = append(ctx.Procs, sw.procs...)
	}

	// The per-tick work is a fixed pipeline of hooks sharing one Context:
	// the measurement probe first (so the audit and every observer see
	// this tick's fresh reading), then the invariant audit (against the
	// tick that just completed), then every spec-registered observer
	// (telemetry collectors, probes) in order, then the control hook that
	// applies injections and delayed spawns — those configure the NEXT
	// tick (the scheduler enforces new affinity masks and the governor
	// applies new caps at its next pass, so checking or sampling this
	// tick against them would be wrong).
	audit := func(ctx *Context) {
		now := ctx.Sim.Now() - start
		// The integral accumulates the same P*dt terms the power model
		// integrates, making energy conservation an exact bookkeeping
		// identity to check against.
		ctx.PowerIntegralJ += ctx.Sim.Power.PkgPowerW() * ctx.Sim.Tick()
		for _, inv := range invariants {
			if !failed[inv.Name()] {
				report(now, inv, inv.Check(ctx))
			}
		}
		ctx.PrevNowSec = ctx.Sim.Now()
	}
	nextInject := 0
	control := func(ctx *Context) {
		s, now := ctx.Sim, ctx.Sim.Now()-start
		for nextInject < len(injects) && injects[nextInject].AtSec <= now {
			apply(s, workloads, wide, injects[nextInject])
			nextInject++
		}
		for i, sw := range workloads {
			if !sw.spawned && sw.spec.StartSec <= now {
				sw.spawn(s, s.Now())
				ctx.Procs = append(ctx.Procs, sw.procs...)
				rt.workload("workload.spawn", sw.spec.label(i), s.Now())
			}
			if sw.spawned && sw.doneAt < 0 && sw.done() {
				sw.doneAt = s.Now()
				rt.workload("workload.done", sw.spec.label(i), s.Now())
			}
		}
	}
	hooks := make([]StepHook, 0, len(spec.StepHooks)+3)
	if probe != nil {
		hooks = append(hooks, func(ctx *Context) {
			probe.step(ctx.Sim.Now()-start, workloads[spec.Measure.Workload])
		})
	}
	hooks = append(hooks, audit)
	hooks = append(hooks, spec.StepHooks...)
	hooks = append(hooks, control)
	remove := s.AddStepHook(func(*sim.Machine) {
		for _, h := range hooks {
			h(ctx)
		}
	})
	defer remove()

	allDone := func() bool {
		for _, sw := range workloads {
			if !sw.done() {
				return false
			}
		}
		return len(workloads) > 0
	}
	cond := func() bool {
		if spec.Stop != nil && spec.Stop() {
			res.Stopped = true
			return true
		}
		return allDone()
	}
	rec := trace.NewRecorder(s, period)
	res.Completed = rec.RunUntil(cond, maxSec) && allDone()
	res.ElapsedSec = s.Now() - start
	res.Samples = rec.Samples()
	res.Summary = trace.Summarize(res.Samples)
	res.EnergyJ = s.Power.EnergyJ(0) - ctx.StartEnergyJ
	res.ByType = wide.collect(s)

	for i, sw := range workloads {
		wr := WorkloadResult{Name: sw.spec.label(i), Kind: sw.spec.Kind, Done: sw.done()}
		if sw.spawned {
			end := sw.doneAt
			if end < 0 {
				end = s.Now()
			}
			wr.ElapsedSec = end - sw.startedAt
			if sw.hpl != nil && wr.Done && wr.ElapsedSec > 0 {
				wr.Gflops = sw.hpl.Gflops(wr.ElapsedSec)
			}
		}
		res.Workloads = append(res.Workloads, wr)
	}

	if probe != nil {
		res.MeasureFinal = probe.finish()
		rep := probe.state.Set.Degradations()
		res.Degradations = &rep
	}

	for _, inv := range invariants {
		if !failed[inv.Name()] {
			report(-1, inv, inv.Final(ctx))
		}
	}
	res.Digest = res.computeDigest(s.HW.NumCPUs())
	rt.end(s, res, start)
	return res, nil
}

// apply executes one injection.
func apply(s *sim.Machine, workloads []*spawnedWorkload, wide *wideSet, inj Inject) {
	traceInject(s, inj)
	switch inj.Kind {
	case InjectMigrate:
		set := hw.NewCPUSet(inj.CPUs...)
		for _, p := range workloads[inj.Workload].procs {
			// Ignore per-process errors: a finished (reaped) pid is not a
			// scenario failure.
			_ = s.Sched.SetAffinity(p.PID, set)
		}
	case InjectPowerLimit:
		s.Power.SetLimits(inj.PL1W, inj.PL2W)
	case InjectFreqCap:
		s.Governor.SetUserCapMHz(inj.Class, inj.MHz)
	case InjectHeat:
		s.Thermal.AddHeatJ(inj.HeatJ)
	case InjectCounterSteal:
		for _, pt := range pmuTypesOfClass(s.HW, inj.Class) {
			s.Kernel.SetWatchdog(pt, true)
		}
	case injectCounterRelease:
		for _, pt := range pmuTypesOfClass(s.HW, inj.Class) {
			s.Kernel.SetWatchdog(pt, false)
		}
	case InjectHotplugOff:
		// Snapshot the harness's own counters on that CPU before the
		// kernel kills them, so collected totals survive the offline.
		wide.offlineCPU(s, inj.CPU)
		s.SetCPUOnline(inj.CPU, false)
	case InjectHotplugOn:
		s.SetCPUOnline(inj.CPU, true)
		wide.reopenCPU(s, inj.CPU)
	case InjectBufferPressure:
		s.Kernel.SetSampleRingCap(inj.Cap)
	}
}

// pmuTypesOfClass returns the kernel PMU types of every core type of the
// given class.
func pmuTypesOfClass(m *hw.Machine, class hw.CoreClass) []uint32 {
	var out []uint32
	for i := range m.Types {
		if m.Types[i].Class == class {
			out = append(out, m.Types[i].PMU.PerfType)
		}
	}
	return out
}

// WideEvent is one system-wide counter the harness keeps open for
// monitoring and invariant checking.
type WideEvent struct {
	// FD is the perf_event descriptor (-1 while Dead).
	FD int
	// CPU is the CPU the event was opened on.
	CPU int
	// TypeName is the core type that owns the event's PMU.
	TypeName string
	// Kind is the architectural quantity counted.
	Kind events.Kind
	// Dead marks an event whose CPU was hotplugged off; its accumulated
	// delta is preserved harness-side and monitoring hooks must skip it.
	Dead bool

	attr  perfevent.Attr // for reopening after hotplug-on
	carry float64        // delta accumulated by dead predecessors
}

type wideSet struct {
	events  []WideEvent
	foreign []WideEvent
	base    map[int]float64 // fd -> value at open (warm machines)
}

// wideEventSpecs returns the per-PMU (event, umask, kind) triples openWide
// programs, resolving the per-architecture naming differences.
func wideEventSpecs(tab *events.PMU) [](struct {
	name  string
	umask string
	kind  events.Kind
}) {
	type spec = struct {
		name  string
		umask string
		kind  events.Kind
	}
	var out []spec
	out = append(out, spec{"INST_RETIRED", "", events.KindInstructions})
	if tab.Lookup("CPU_CLK_UNHALTED") != nil {
		out = append(out, spec{"CPU_CLK_UNHALTED", "", events.KindCycles})
	} else {
		out = append(out, spec{"CPU_CYCLES", "", events.KindCycles})
	}
	switch {
	case tab.Lookup("LONGEST_LAT_CACHE") != nil:
		out = append(out, spec{"LONGEST_LAT_CACHE", "REFERENCE", events.KindLLCRefs},
			spec{"LONGEST_LAT_CACHE", "MISS", events.KindLLCMisses})
	case tab.Lookup("L3D_CACHE") != nil:
		out = append(out, spec{"L3D_CACHE", "", events.KindLLCRefs},
			spec{"L3D_CACHE_REFILL", "", events.KindLLCMisses})
	default:
		out = append(out, spec{"L2D_CACHE", "", events.KindLLCRefs},
			spec{"L2D_CACHE_REFILL", "", events.KindLLCMisses})
	}
	return out
}

// openWide opens the harness's system-wide counters: on every CPU the four
// "perf stat -a" events of the CPU's own PMU, plus — on hybrid machines —
// one foreign-PMU instruction counter per other core type, which the
// core-type-isolation invariant asserts never counts.
func openWide(s *sim.Machine) (*wideSet, error) {
	ws := &wideSet{base: map[int]float64{}}
	m := s.HW
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		t := m.TypeOf(cpu)
		tab := events.LookupPMU(t.PfmName)
		if tab == nil {
			return nil, fmt.Errorf("no event table for PMU %q", t.PfmName)
		}
		for _, spec := range wideEventSpecs(tab) {
			def := tab.Lookup(spec.name)
			if def == nil {
				return nil, fmt.Errorf("PMU %q has no %s event", t.PfmName, spec.name)
			}
			var bits uint64
			if spec.umask != "" {
				if u := def.Umask(spec.umask); u != nil {
					bits = u.Bits
				}
			} else if u := def.DefaultUmask(); u != nil {
				bits = u.Bits
			}
			attr := perfevent.Attr{
				Type:   t.PMU.PerfType,
				Config: events.Encode(def.Code, bits),
			}
			fd, err := s.Kernel.Open(attr, -1, cpu, -1)
			if err != nil {
				return nil, fmt.Errorf("opening system-wide %s on cpu%d: %w", spec.name, cpu, err)
			}
			ws.events = append(ws.events, WideEvent{FD: fd, CPU: cpu, TypeName: t.Name, Kind: spec.kind, attr: attr})
		}
		// Foreign-PMU probes: this CPU must never feed other types' PMUs.
		for i := range m.Types {
			ft := &m.Types[i]
			if ft.Name == t.Name {
				continue
			}
			ftab := events.LookupPMU(ft.PfmName)
			if ftab == nil {
				continue
			}
			def := ftab.Lookup("INST_RETIRED")
			if def == nil {
				continue
			}
			var bits uint64
			if u := def.DefaultUmask(); u != nil {
				bits = u.Bits
			}
			attr := perfevent.Attr{
				Type:   ft.PMU.PerfType,
				Config: events.Encode(def.Code, bits),
			}
			fd, err := s.Kernel.Open(attr, -1, cpu, -1)
			if err != nil {
				return nil, fmt.Errorf("opening foreign probe %s/%s on cpu%d: %w", ft.PfmName, "INST_RETIRED", cpu, err)
			}
			ws.foreign = append(ws.foreign, WideEvent{FD: fd, CPU: cpu, TypeName: ft.Name, Kind: events.KindInstructions, attr: attr})
		}
	}
	for _, we := range append(append([]WideEvent(nil), ws.events...), ws.foreign...) {
		c, err := s.Kernel.Read(we.FD)
		if err == nil {
			ws.base[we.FD] = float64(c.Value)
		}
	}
	return ws, nil
}

// offlineCPU folds the current delta of every harness event on cpu into
// its carry and marks it dead, closing the descriptor. Must run before the
// kernel offlines the CPU (dead descriptors no longer read).
func (ws *wideSet) offlineCPU(s *sim.Machine, cpu int) {
	for _, set := range [2][]WideEvent{ws.events, ws.foreign} {
		for i := range set {
			we := &set[i]
			if we.CPU != cpu || we.Dead {
				continue
			}
			if c, err := s.Kernel.Read(we.FD); err == nil {
				we.carry += float64(c.Value) - ws.base[we.FD]
			}
			s.Kernel.Close(we.FD)
			delete(ws.base, we.FD)
			we.FD, we.Dead = -1, true
		}
	}
}

// reopenCPU reopens the dead harness events of a re-onlined CPU; their
// carry keeps earlier counts. A failed reopen leaves the event dead.
func (ws *wideSet) reopenCPU(s *sim.Machine, cpu int) {
	for _, set := range [2][]WideEvent{ws.events, ws.foreign} {
		for i := range set {
			we := &set[i]
			if we.CPU != cpu || !we.Dead {
				continue
			}
			fd, err := s.Kernel.Open(we.attr, -1, cpu, -1)
			if err != nil {
				continue
			}
			we.FD, we.Dead = fd, false
			ws.base[fd] = 0
			if c, err := s.Kernel.Read(fd); err == nil {
				ws.base[fd] = float64(c.Value)
			}
		}
	}
}

func (ws *wideSet) collect(s *sim.Machine) map[string]TypeCounters {
	out := map[string]TypeCounters{}
	for _, we := range ws.events {
		v := we.carry
		if !we.Dead {
			// A read can still fail if a fault plan offlined the CPU
			// behind the harness's back; the carry is all we have then.
			if c, err := s.Kernel.Read(we.FD); err == nil {
				v += float64(c.Value) - ws.base[we.FD]
			}
		}
		tc := out[we.TypeName]
		switch we.Kind {
		case events.KindInstructions:
			tc.Instructions += v
		case events.KindCycles:
			tc.Cycles += v
		case events.KindLLCRefs:
			tc.LLCRefs += v
		case events.KindLLCMisses:
			tc.LLCMisses += v
		}
		out[we.TypeName] = tc
	}
	return out
}

func (ws *wideSet) close(s *sim.Machine) {
	for _, we := range ws.events {
		if we.FD >= 0 {
			s.Kernel.Close(we.FD)
		}
	}
	for _, we := range ws.foreign {
		if we.FD >= 0 {
			s.Kernel.Close(we.FD)
		}
	}
}
