package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Golden is the committed fingerprint of one reference scenario run: the
// behavior digest plus a few human-readable scalars so a regression
// failure says WHAT moved, not just that something did. Scalars are stored
// as fixed-precision strings to keep the files byte-stable.
type Golden struct {
	Name       string `json:"name"`
	Machine    string `json:"machine"`
	Digest     string `json:"digest"`
	Samples    int    `json:"samples"`
	Completed  bool   `json:"completed"`
	ElapsedSec string `json:"elapsed_sec"`
	EnergyJ    string `json:"energy_j"`
	MaxTempC   string `json:"max_temp_c"`
	MeanPowerW string `json:"mean_power_w"`
	Gflops     string `json:"gflops,omitempty"`
}

// GoldenOf condenses a run into its golden fingerprint.
func GoldenOf(res *Result) Golden {
	g := Golden{
		Name:       res.Name,
		Machine:    res.MachineName,
		Digest:     res.Digest,
		Samples:    res.Summary.Samples,
		Completed:  res.Completed,
		ElapsedSec: fmt.Sprintf("%.3f", res.ElapsedSec),
		EnergyJ:    fmt.Sprintf("%.3f", res.EnergyJ),
		MaxTempC:   fmt.Sprintf("%.3f", res.Summary.MaxTempC),
		MeanPowerW: fmt.Sprintf("%.3f", res.Summary.MeanPowerW),
	}
	for _, w := range res.Workloads {
		if w.Kind == WorkloadHPL && w.Done {
			g.Gflops = fmt.Sprintf("%.3f", w.Gflops)
			break
		}
	}
	return g
}

// Diff returns a human-readable field-by-field comparison against another
// golden ("" when identical).
func (g Golden) Diff(other Golden) string {
	var b strings.Builder
	cmp := func(field, a, bv string) {
		if a != bv {
			fmt.Fprintf(&b, "  %s: %s -> %s\n", field, a, bv)
		}
	}
	cmp("machine", g.Machine, other.Machine)
	cmp("digest", g.Digest, other.Digest)
	cmp("samples", fmt.Sprint(g.Samples), fmt.Sprint(other.Samples))
	cmp("completed", fmt.Sprint(g.Completed), fmt.Sprint(other.Completed))
	cmp("elapsed_sec", g.ElapsedSec, other.ElapsedSec)
	cmp("energy_j", g.EnergyJ, other.EnergyJ)
	cmp("max_temp_c", g.MaxTempC, other.MaxTempC)
	cmp("mean_power_w", g.MeanPowerW, other.MeanPowerW)
	cmp("gflops", g.Gflops, other.Gflops)
	return b.String()
}

// GoldenPath returns the testdata path of a scenario's golden file.
func GoldenPath(dir, name string) string {
	return filepath.Join(dir, name+".json")
}

// LoadGolden reads a committed golden file.
func LoadGolden(path string) (Golden, error) {
	var g Golden
	raw, err := os.ReadFile(path)
	if err != nil {
		return g, err
	}
	if err := json.Unmarshal(raw, &g); err != nil {
		return g, fmt.Errorf("golden %s: %w", path, err)
	}
	return g, nil
}

// SaveGolden writes a golden file (the -update workflow).
func SaveGolden(path string, g Golden) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
