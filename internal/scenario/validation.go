package scenario

// Validation returns the golden scenarios behind the counter-accuracy
// validation suite (internal/validate): single-workload runs whose event
// totals have closed-form oracles, pinned to one CPU at a fixed operating
// point so the numbers are pure functions of the machine model. They
// complement the Reference set — Reference trips on any behavior drift in
// the rich mixed scenarios, Validation trips specifically on drift in the
// micro-workload shapes the accuracy scorecard is built from. Digests are
// committed under testdata/golden/ next to the Reference ones and
// regenerated the same way (`go test ./internal/scenario -update`).
func Validation() []Spec {
	return []Spec{
		{
			// The loop oracle shape on the desktop's P-core: exact retired
			// instruction count, cycles = instructions/BaseIPC. The probe
			// counts clean (no multiplexing) so both readings must land
			// within integer truncation of the closed form.
			Name:            "validate-raptorlake-loop",
			Machine:         "raptorlake",
			Seed:            1,
			MaxSeconds:      5,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{{
				Kind:        WorkloadLoop,
				Name:        "oracle-loop",
				CPUs:        []int{0},
				InstrPerRep: 1e6,
				Reps:        1500,
			}},
			Measure: &MeasureSpec{
				Workload: 0,
				Events:   []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
			},
		},
		{
			// The stride oracle shape on the board's A72: a DRAM-resident
			// sweep (footprint 4x the 1 MiB LLC) whose LLC references and
			// misses follow from the cache geometry. The four-event probe
			// multiplexes, exercising the scaled-estimate path against an
			// analytically known truth.
			Name:            "validate-orangepi-stride",
			Machine:         "orangepi800",
			Seed:            2,
			MaxSeconds:      5,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{{
				Kind:         WorkloadStride,
				Name:         "oracle-stride",
				CPUs:         []int{4},
				Instructions: 8e6,
				StrideBytes:  64,
				FootprintKB:  4096,
			}},
			Measure: &MeasureSpec{
				Workload:  0,
				Events:    []string{"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L3_TCA", "PAPI_L3_TCM"},
				Multiplex: true,
			},
		},
		{
			// The spin oracle shape on the phone SoC's prime core: a
			// fixed-duration busy-wait whose cycle total is f*D and whose
			// package energy integrates the power model in closed form.
			Name:            "validate-dimensity-spin",
			Machine:         "dimensity9000",
			Seed:            3,
			MaxSeconds:      5,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{{
				Kind:    WorkloadSpin,
				Name:    "oracle-spin",
				CPUs:    []int{7},
				Seconds: 1.5,
			}},
			Measure: &MeasureSpec{
				Workload: 0,
				Events:   []string{"PAPI_TOT_CYC"},
			},
		},
		{
			// The mixed shape on the homogeneous baseline: loop and stride
			// side by side on separate cores, the probe on the stride. A
			// cache-resident footprint (half the 8 MiB LLC) makes the LLC
			// miss oracle zero — the suite's sole zero-expectation case.
			Name:            "validate-homogeneous-mix",
			Machine:         "homogeneous",
			Seed:            4,
			MaxSeconds:      6,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{
				{Kind: WorkloadLoop, Name: "oracle-loop", CPUs: []int{0}, InstrPerRep: 1e6, Reps: 1200},
				{Kind: WorkloadStride, Name: "oracle-stride", CPUs: []int{2}, Instructions: 3e7, StrideBytes: 64, FootprintKB: 4096},
			},
			Measure: &MeasureSpec{
				Workload: 1,
				Events:   []string{"PAPI_TOT_INS", "PAPI_L3_TCA", "PAPI_L3_TCM"},
			},
		},
	}
}
