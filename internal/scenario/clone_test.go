package scenario

import (
	"reflect"
	"testing"

	"hetpapi/internal/dvfs"
	"hetpapi/internal/sched"
)

// TestSpecCloneSharesNothingMutable is the aliasing audit behind the
// fleet generator: one template Spec expanded into many machines must not
// leak writes between them through shared backing arrays. Clone a spec,
// mutate every slice and pointee of the clone, and verify the original
// is untouched.
func TestSpecCloneSharesNothingMutable(t *testing.T) {
	orig := Spec{
		Name:    "template",
		Machine: "raptorlake",
		Seed:    7,
		Workloads: []WorkloadSpec{
			{Kind: WorkloadLoop, Name: "loop", CPUs: []int{0, 2, 4}, InstrPerRep: 1e6, Reps: 100},
			{Kind: WorkloadSpin, Name: "spin", CPUs: []int{1}, Seconds: 0.5},
		},
		Injects: []Inject{
			{AtSec: 1, Kind: InjectMigrate, Workload: 0, CPUs: []int{6, 8}},
		},
		Measure:   &MeasureSpec{Workload: 0, Events: []string{"PAPI_TOT_INS"}},
		Sched:     &sched.Config{Seed: 3},
		DVFS:      &dvfs.Config{},
		StepHooks: []StepHook{func(*Context) {}},
	}
	snapshot := orig.Clone() // reference copy to diff against

	c := orig.Clone()
	c.Name = "mutant"
	c.Workloads[0].CPUs[0] = 99
	c.Workloads[1].Name = "renamed"
	c.Workloads = append(c.Workloads, WorkloadSpec{Kind: WorkloadSpin})
	c.Injects[0].CPUs[1] = 99
	c.Injects = append(c.Injects, Inject{Kind: InjectHeat})
	c.Measure.Events[0] = "PAPI_TOT_CYC"
	c.Measure.Workload = 1
	c.Sched.Seed = 99
	c.DVFS.UpStep = 1
	c.StepHooks = append(c.StepHooks, func(*Context) {})

	if orig.Name != snapshot.Name ||
		!reflect.DeepEqual(orig.Workloads, snapshot.Workloads) ||
		!reflect.DeepEqual(orig.Injects, snapshot.Injects) ||
		!reflect.DeepEqual(orig.Measure, snapshot.Measure) ||
		!reflect.DeepEqual(orig.Sched, snapshot.Sched) ||
		!reflect.DeepEqual(orig.DVFS, snapshot.DVFS) ||
		len(orig.StepHooks) != len(snapshot.StepHooks) {
		t.Fatalf("mutating a clone changed the original:\norig %+v\nwant %+v", orig, snapshot)
	}
}

// TestSpecCloneRunsIndependently reruns one cloned template on two fresh
// machines mutated differently mid-flight (a migrate inject on one only)
// and checks the unmutated clone reproduces the template digest.
func TestSpecCloneRunsIndependently(t *testing.T) {
	template := Spec{
		Name:            "clone-independence",
		Machine:         "homogeneous",
		Seed:            5,
		MaxSeconds:      2,
		SamplePeriodSec: 0.25,
		Workloads: []WorkloadSpec{
			{Kind: WorkloadLoop, Name: "loop", CPUs: []int{0, 1}, InstrPerRep: 1e6, Reps: 2000},
		},
	}
	base, err := Run(template.Clone())
	if err != nil {
		t.Fatal(err)
	}

	perturbed := template.Clone()
	perturbed.Injects = append(perturbed.Injects, Inject{
		AtSec: 0.5, Kind: InjectMigrate, Workload: 0, CPUs: []int{2, 3},
	})
	perturbed.Workloads[0].CPUs[0] = 2
	if _, err := Run(perturbed); err != nil {
		t.Fatal(err)
	}

	again, err := Run(template.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != base.Digest {
		t.Fatalf("perturbing one clone changed its sibling: %s vs %s",
			again.Digest[:12], base.Digest[:12])
	}
	if len(template.Injects) != 0 || template.Workloads[0].CPUs[0] != 0 {
		t.Fatalf("template itself was mutated: %+v", template)
	}
}
