package scenario

import (
	"fmt"
	"strings"

	"hetpapi/internal/core"
	"hetpapi/internal/sim"
)

// MeasureSpec attaches a PAPI-style measurement probe (a core.EventSet) to
// one workload of the scenario, so fault scenarios exercise the full
// library stack — presets, multi-PMU grouping and the graceful-degradation
// ladder — under the same per-tick audit as the raw kernel counters.
type MeasureSpec struct {
	// Workload indexes Spec.Workloads; the probe attaches to the
	// workload's first thread.
	Workload int
	// Events are the probe's events: PAPI_* names resolve as presets,
	// anything else as a native event name.
	Events []string
	// Multiplex requests software multiplexing up front (time-scaled
	// reads even before any ENOSPC fallback).
	Multiplex bool
	// StartSec delays the probe's first Start attempt into the run. The
	// probe retries every tick while Start defers (EBUSY), so a start
	// into a counter-steal window succeeds once the counter is released.
	StartSec float64
}

// MeasureState is the probe's live state, exposed on the Context so
// invariants and telemetry hooks can audit every reading as it happens.
type MeasureState struct {
	// Set is the probe EventSet (nil until built).
	Set *core.EventSet
	// Names echoes MeasureSpec.Events.
	Names []string
	// Started reports whether the set is counting.
	Started bool
	// LastValues is the most recent degradation-aware reading.
	LastValues []core.Value
	// StartErrs counts deferred Start attempts (the probe retries on its
	// own tick schedule instead of backing off inside Start).
	StartErrs int
	// ReadErrs counts failed reads — always zero when the degradation
	// ladder holds, and audited by the reads-monotonic invariant.
	ReadErrs int
}

// measureProbe drives a MeasureSpec over a run.
type measureProbe struct {
	lib   *core.Library
	spec  *MeasureSpec
	state MeasureState
}

// newMeasureProbe initializes the library and builds the probe's EventSet
// eagerly, so a misspelled event name fails the run up front instead of
// silently retrying every tick.
func newMeasureProbe(s *sim.Machine, ms *MeasureSpec, nworkloads int) (*measureProbe, error) {
	if ms.Workload < 0 || ms.Workload >= nworkloads {
		return nil, fmt.Errorf("measure targets workload %d of %d", ms.Workload, nworkloads)
	}
	if len(ms.Events) == 0 {
		return nil, fmt.Errorf("measure has no events")
	}
	lib, err := core.Init(s, core.Options{})
	if err != nil {
		return nil, err
	}
	es := lib.CreateEventSet()
	if ms.Multiplex {
		if err := es.SetMultiplex(); err != nil {
			return nil, err
		}
	}
	for _, name := range ms.Events {
		if strings.HasPrefix(name, "PAPI_") {
			err = es.AddPreset(core.Preset(name))
		} else {
			err = es.AddNamed(name)
		}
		if err != nil {
			return nil, fmt.Errorf("measure event %q: %w", name, err)
		}
	}
	// The probe runs inside a step hook: Start must never recurse into
	// the simulation loop, so in-place EBUSY backoff is disabled and the
	// probe retries across ticks instead.
	es.SetStartRetry(-1)
	return &measureProbe{
		lib:   lib,
		spec:  ms,
		state: MeasureState{Set: es, Names: append([]string(nil), ms.Events...)},
	}, nil
}

// step runs once per tick: attach and start the probe when its time and
// target arrive (retrying deferred starts), then read.
func (mp *measureProbe) step(now float64, target *spawnedWorkload) {
	if now < mp.spec.StartSec || !target.spawned || len(target.procs) == 0 {
		return
	}
	if !mp.state.Started {
		if err := mp.state.Set.Attach(target.procs[0].PID); err != nil {
			mp.state.StartErrs++
			return
		}
		if err := mp.state.Set.Start(); err != nil {
			mp.state.StartErrs++ // deferred (EBUSY); retry next tick
			return
		}
		mp.state.Started = true
	}
	vals, err := mp.state.Set.ReadValues()
	if err != nil {
		mp.state.ReadErrs++
		return
	}
	mp.state.LastValues = vals
}

// finish stops the probe and returns the final values (nil if the probe
// never started).
func (mp *measureProbe) finish() []core.Value {
	if !mp.state.Started {
		return mp.state.LastValues
	}
	vals, err := mp.state.Set.StopValues()
	if err != nil {
		mp.state.ReadErrs++
		return mp.state.LastValues
	}
	mp.state.LastValues = vals
	return vals
}

func (mp *measureProbe) cleanup() {
	if mp.state.Set != nil {
		_ = mp.state.Set.Cleanup()
	}
}
