package scenario

import (
	"fmt"
	"testing"
)

// faultSpecs returns the reference scenarios that carry a Measure probe —
// the fault-injection scenarios this file sweeps.
func faultSpecs(t *testing.T) []Spec {
	t.Helper()
	var out []Spec
	for _, spec := range Reference() {
		if spec.Measure != nil {
			out = append(out, spec)
		}
	}
	if len(out) < 2 {
		t.Fatalf("expected at least 2 fault scenarios with Measure probes, got %d", len(out))
	}
	return out
}

// TestFaultScenarioSeedSweep re-runs every fault scenario under 16
// scheduler seeds and asserts the degradation contract holds regardless of
// placement noise: zero invariant violations (which subsumes "every probe
// read completed" and "values stayed monotonic and bounded", checked every
// tick by reads-monotonic and scale-bounded), final values present for
// every requested event with a consistent error bound, and a degradation
// report attached.
func TestFaultScenarioSeedSweep(t *testing.T) {
	seeds := int64(16)
	if testing.Short() {
		seeds = 4
	}
	for _, base := range faultSpecs(t) {
		for seed := int64(1); seed <= seeds; seed++ {
			spec := base
			spec.Seed = seed
			t.Run(fmt.Sprintf("%s/seed%d", base.Name, seed), func(t *testing.T) {
				t.Parallel()
				res, err := Run(spec)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				if !res.Completed {
					t.Errorf("workloads did not finish within %.0fs (elapsed %.3fs)",
						spec.MaxSeconds, res.ElapsedSec)
				}
				if got, want := len(res.MeasureFinal), len(spec.Measure.Events); got != want {
					t.Fatalf("MeasureFinal has %d values, want %d", got, want)
				}
				for i, v := range res.MeasureFinal {
					if v.Final == 0 {
						t.Errorf("event %d (%s) counted nothing", i, spec.Measure.Events[i])
					}
					if v.ErrorBound != v.Scaled-v.Raw {
						t.Errorf("event %d (%s): ErrorBound %d != Scaled-Raw %d",
							i, spec.Measure.Events[i], v.ErrorBound, v.Scaled-v.Raw)
					}
				}
				if res.Degradations == nil {
					t.Fatal("no degradation report on a fault scenario")
				}
			})
		}
	}
}

// TestWatchdogStealDegradesScaled pins the behavioral shape of the
// watchdog scenario under its reference seed: the steal window stalls the
// probe's cycles group, so the final PAPI_TOT_CYC value must carry a
// nonzero error bound while PAPI_TOT_INS keeps counting cleanly.
func TestWatchdogStealDegradesScaled(t *testing.T) {
	for _, spec := range faultSpecs(t) {
		if spec.Name != "raptorlake-watchdog-steal" {
			continue
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		cyc := res.MeasureFinal[1]
		if cyc.ErrorBound == 0 {
			t.Errorf("PAPI_TOT_CYC survived the steal window without extrapolating: %+v", cyc)
		}
		if cyc.Scaled <= cyc.Raw {
			t.Errorf("PAPI_TOT_CYC not scaled: raw %d scaled %d", cyc.Raw, cyc.Scaled)
		}
		if res.Degradations.DegradedReads == 0 {
			t.Errorf("no degraded reads tallied: %+v", *res.Degradations)
		}
		return
	}
	t.Fatal("raptorlake-watchdog-steal not in Reference()")
}

// TestHotplugScenarioDefersStart pins the biglittle scenario's EBUSY path:
// the t=0 counter steal covers the probe's StartSec, so Start must defer
// at least once and then recover after the release.
func TestHotplugScenarioDefersStart(t *testing.T) {
	for _, spec := range faultSpecs(t) {
		if spec.Name != "biglittle-hotplug" {
			continue
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degradations.DeferredStarts == 0 {
			t.Errorf("probe start was never deferred by the counter steal: %+v", *res.Degradations)
		}
		for i, v := range res.MeasureFinal {
			if v.Final == 0 {
				t.Errorf("event %d (%s) counted nothing after deferred start", i, spec.Measure.Events[i])
			}
		}
		return
	}
	t.Fatal("biglittle-hotplug not in Reference()")
}
