package scenario

import (
	"errors"
	"fmt"
	"math"

	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/power"
	"hetpapi/internal/sched"
	"hetpapi/internal/sim"
)

// Context is the state an invariant checks against. The harness maintains
// it across a run; invariants may keep private per-run state of their own
// (instances returned by Standard() are therefore single-use).
type Context struct {
	// Sim is the running machine, in a consistent post-tick state.
	Sim *sim.Machine
	// Spec is the scenario being run.
	Spec *Spec
	// StartSec is the machine time at which the run began (non-zero on
	// warm machines).
	StartSec float64
	// PrevNowSec is the machine time after the previous tick's checks.
	PrevNowSec float64
	// StartEnergyJ is the package energy at the start of the run.
	StartEnergyJ float64
	// PowerIntegralJ is the harness-side ∫ P_pkg dt over the run so far.
	PowerIntegralJ float64
	// Wide are the per-CPU own-PMU counters; Foreign are the
	// mismatched-PMU probes that must never count.
	Wide    []WideEvent
	Foreign []WideEvent
	// Procs are the processes the harness spawned.
	Procs []*sched.Process
	// Measure is the PAPI-probe state when the spec has one (nil
	// otherwise); the reads-monotonic and scale-bounded invariants audit
	// it every tick.
	Measure *MeasureState
}

// Invariant is a machine property checked on every tick and at end of run.
// Check runs after each tick; Final runs once after the last tick. Either
// may be a no-op.
type Invariant interface {
	// Name identifies the invariant in violation reports.
	Name() string
	// Check asserts the invariant against the post-tick state.
	Check(c *Context) error
	// Final asserts end-of-run properties.
	Final(c *Context) error
}

// Standard returns a fresh instance of every standard invariant:
//
//   - time-monotonic: simulated time advances by exactly one tick per step
//   - counter-monotonic: perf counters and RAPL energy never decrease
//   - energy-conservation: RAPL package energy equals ∫ P dt
//   - core-type-isolation: events of one core type's PMU never count on
//     CPUs of another type (hybrid machines)
//   - sched-affinity: no process ever runs on a CPU outside its mask
//   - freq-envelope: every CPU frequency stays inside its DVFS policy
//     envelope and under the thermal/user caps
//   - thermal-bounds: the zone stays within [ambient, TjMax]
//   - power-sanity: package power stays within the machine's physical
//     range and below the wall-meter reading
//   - reads-monotonic: the measurement probe's reported values never
//     decrease and its reads never fail, no matter how degraded the
//     substrate is (no-op without a Measure spec)
//   - scale-bounded: every probe value's scaled estimate respects its
//     declared error bound (Raw <= Final, ErrorBound = Scaled - Raw,
//     ScaleFactor >= 1; no-op without a Measure spec)
//
// Instances hold per-run state; build a new set for every run.
func Standard() []Invariant {
	return []Invariant{
		&timeMonotonic{},
		&counterMonotonic{},
		&energyConservation{},
		&coreTypeIsolation{},
		&schedAffinity{},
		&freqEnvelope{},
		&thermalBounds{},
		&powerSanity{},
		&readsMonotonic{},
		&scaleBounded{},
	}
}

// timeMonotonic asserts the clock advances by exactly one tick per step:
// any drift means wall-clock time or a second time base leaked into the
// simulation.
type timeMonotonic struct{}

func (timeMonotonic) Name() string { return "time-monotonic" }

func (timeMonotonic) Check(c *Context) error {
	now, tick := c.Sim.Now(), c.Sim.Tick()
	if now <= c.PrevNowSec {
		return fmt.Errorf("time went backwards: %.9f -> %.9f", c.PrevNowSec, now)
	}
	if d := now - c.PrevNowSec; math.Abs(d-tick) > tick*1e-6 {
		return fmt.Errorf("step advanced %.9fs, want one tick (%.9fs)", d, tick)
	}
	return nil
}

func (timeMonotonic) Final(*Context) error { return nil }

// counterMonotonic asserts no perf counter and no RAPL energy domain ever
// decreases — the validation Röhl et al. apply to real hardware events,
// here applied to every simulated one.
type counterMonotonic struct {
	prevCounters map[int]uint64
	prevEnergy   [4]float64
}

func (counterMonotonic) Name() string { return "counter-monotonic" }

func (m *counterMonotonic) Check(c *Context) error {
	if m.prevCounters == nil {
		m.prevCounters = map[int]uint64{}
	}
	for _, set := range [2][]WideEvent{c.Wide, c.Foreign} {
		for _, we := range set {
			if we.Dead {
				continue
			}
			count, err := c.Sim.Kernel.Read(we.FD)
			if err != nil {
				// A fault plan can offline a CPU without going through
				// the harness's hotplug bookkeeping; a dead descriptor
				// is degradation, not a monotonicity violation.
				if errors.Is(err, perfevent.ErrNoSuchDevice) {
					continue
				}
				return fmt.Errorf("reading fd %d (cpu%d %s %v): %v", we.FD, we.CPU, we.TypeName, we.Kind, err)
			}
			if prev, ok := m.prevCounters[we.FD]; ok && count.Value < prev {
				return fmt.Errorf("cpu%d %s %v counter decreased: %d -> %d",
					we.CPU, we.TypeName, we.Kind, prev, count.Value)
			}
			m.prevCounters[we.FD] = count.Value
		}
	}
	for i, d := range []power.Domain{power.DomainPkg, power.DomainCores, power.DomainRAM, power.DomainPsys} {
		e := c.Sim.Power.EnergyJ(d)
		if e < m.prevEnergy[i] {
			return fmt.Errorf("energy domain %d decreased: %.6f -> %.6f J", int(d), m.prevEnergy[i], e)
		}
		m.prevEnergy[i] = e
	}
	return nil
}

func (*counterMonotonic) Final(*Context) error { return nil }

// energyConservation asserts the package energy counter equals the time
// integral of package power over the run, within float bookkeeping
// tolerance — energy cannot appear or vanish between the power model and
// the RAPL counter.
type energyConservation struct{}

func (energyConservation) Name() string { return "energy-conservation" }

func (i energyConservation) Check(c *Context) error { return i.verify(c) }
func (i energyConservation) Final(c *Context) error { return i.verify(c) }

func (energyConservation) verify(c *Context) error {
	got := c.Sim.Power.EnergyJ(power.DomainPkg) - c.StartEnergyJ
	want := c.PowerIntegralJ
	tol := 1e-6 * math.Max(1, math.Abs(want))
	if math.Abs(got-want) > tol {
		return fmt.Errorf("RAPL pkg energy %.9f J != ∫P·dt %.9f J (|Δ|=%.3g > tol %.3g)",
			got, want, math.Abs(got-want), tol)
	}
	return nil
}

// coreTypeIsolation asserts the paper's central hybrid semantic: an event
// programmed on one core type's PMU never counts work executed on another
// core type. The harness opens a foreign-PMU instruction counter on every
// CPU of a hybrid machine; all of them must stay at zero forever.
type coreTypeIsolation struct{}

func (coreTypeIsolation) Name() string { return "core-type-isolation" }

func (i coreTypeIsolation) Check(c *Context) error { return i.verify(c) }
func (i coreTypeIsolation) Final(c *Context) error { return i.verify(c) }

func (coreTypeIsolation) verify(c *Context) error {
	for _, we := range c.Foreign {
		if we.Dead {
			continue
		}
		count, err := c.Sim.Kernel.Read(we.FD)
		if err != nil {
			if errors.Is(err, perfevent.ErrNoSuchDevice) {
				continue // hotplugged away by a fault plan
			}
			return fmt.Errorf("reading foreign probe fd %d: %v", we.FD, err)
		}
		if count.Value != 0 {
			return fmt.Errorf("PMU of core type %q counted %d instructions on cpu%d (type %q)",
				we.TypeName, count.Value, we.CPU, c.Sim.HW.TypeOf(we.CPU).Name)
		}
	}
	return nil
}

// schedAffinity asserts no process is ever placed on a CPU outside its
// affinity mask — the taskset contract every pinned experiment relies on.
type schedAffinity struct{}

func (schedAffinity) Name() string { return "sched-affinity" }

func (schedAffinity) Check(c *Context) error {
	for _, p := range c.Procs {
		if cpu := p.CPU(); cpu >= 0 && !p.Affinity().Has(cpu) {
			return fmt.Errorf("pid %d running on cpu%d outside affinity %v", p.PID, cpu, p.Affinity())
		}
	}
	return nil
}

func (schedAffinity) Final(*Context) error { return nil }

// freqEnvelope asserts every CPU's frequency stays inside its core type's
// [min, max] range and at or under the effective (thermal ∧ user) cap.
// Each tick's frequencies are chosen before the governor's end-of-tick
// update, so the comparison allows the looser of the current and
// previous-tick caps (the control loop's inherent one-tick lag), plus
// half an OPP step for quantization rounding.
type freqEnvelope struct {
	prevCap [2]float64 // by hw.CoreClass; 0 = not yet observed
}

func (freqEnvelope) Name() string { return "freq-envelope" }

func (fe *freqEnvelope) Check(c *Context) error {
	m := c.Sim.HW
	var capNow [2]float64
	for _, class := range []hw.CoreClass{hw.Performance, hw.Efficiency} {
		capNow[class] = c.Sim.Governor.CapMHz(class)
		if fe.prevCap[class] == 0 {
			fe.prevCap[class] = capNow[class]
		}
	}
	defer func() { fe.prevCap = capNow }()
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		t := m.TypeOf(cpu)
		f := c.Sim.CurFreqMHz(cpu)
		if f < t.MinFreqMHz-1e-9 || f > t.MaxFreqMHz+1e-9 {
			return fmt.Errorf("cpu%d at %.1f MHz outside [%g, %g]", cpu, f, t.MinFreqMHz, t.MaxFreqMHz)
		}
		cap := math.Max(capNow[t.Class], fe.prevCap[t.Class])
		slack := t.FreqStepMHz/2 + 1e-9
		if cap > 0 && f > cap+slack {
			return fmt.Errorf("cpu%d at %.1f MHz above the %.1f MHz %s-class cap",
				cpu, f, cap, t.Class)
		}
	}
	return nil
}

func (*freqEnvelope) Final(*Context) error { return nil }

// thermalBounds asserts the zone temperature stays physical: never below
// ambient, never above TjMax.
type thermalBounds struct{}

func (thermalBounds) Name() string { return "thermal-bounds" }

func (thermalBounds) Check(c *Context) error {
	spec := c.Sim.HW.Thermal
	t := c.Sim.Thermal.TempC()
	if t < spec.AmbientC-1e-6 {
		return fmt.Errorf("zone at %.3f C, below ambient %.3f C", t, spec.AmbientC)
	}
	if t > spec.TjMaxC+1e-6 {
		return fmt.Errorf("zone at %.3f C, above TjMax %.3f C", t, spec.TjMaxC)
	}
	return nil
}

func (thermalBounds) Final(*Context) error { return nil }

// powerSanity asserts the package power stays within the machine's
// physical range — at least the constant uncore draw, at most uncore plus
// every core's worst-case idle+dynamic power — and that the AC-side wall
// reading never drops below the package (a PSU cannot be a source).
type powerSanity struct {
	maxW float64 // lazily computed physical ceiling
}

func (powerSanity) Name() string { return "power-sanity" }

func (ps *powerSanity) Check(c *Context) error {
	m := c.Sim.HW
	if ps.maxW == 0 {
		ps.maxW = m.Power.UncoreWatts
		seen := map[int]bool{}
		for _, cpu := range m.CPUs {
			if seen[cpu.PhysCore] {
				continue
			}
			seen[cpu.PhysCore] = true
			t := m.TypeOf(cpu.ID)
			ps.maxW += t.IdleWatts + t.DynWattsAtMax
		}
	}
	pkg := c.Sim.Power.PkgPowerW()
	if pkg < m.Power.UncoreWatts-1e-9 {
		return fmt.Errorf("package power %.3f W below the %.3f W uncore floor", pkg, m.Power.UncoreWatts)
	}
	if pkg > ps.maxW+1e-9 {
		return fmt.Errorf("package power %.3f W above the %.3f W physical ceiling", pkg, ps.maxW)
	}
	if eff := m.Power.ACEfficiency; eff > 0 && eff <= 1 {
		if wall := c.Sim.Power.WallPowerW(); wall < pkg-1e-9 {
			return fmt.Errorf("wall power %.3f W below package power %.3f W", wall, pkg)
		}
	}
	return nil
}

func (*powerSanity) Final(*Context) error { return nil }

// readsMonotonic asserts the measurement probe never goes dark or
// backwards while the substrate degrades: every ReadValues/StopValues
// completes, and each event's reported Final value never decreases over
// the run — the core contract of the graceful-degradation ladder.
type readsMonotonic struct {
	prev []uint64
}

func (readsMonotonic) Name() string { return "reads-monotonic" }

func (m *readsMonotonic) Check(c *Context) error { return m.verify(c) }
func (m *readsMonotonic) Final(c *Context) error { return m.verify(c) }

func (m *readsMonotonic) verify(c *Context) error {
	if c.Measure == nil {
		return nil
	}
	if c.Measure.ReadErrs > 0 {
		return fmt.Errorf("measure probe failed %d read(s): a degraded eventset must keep answering", c.Measure.ReadErrs)
	}
	vals := c.Measure.LastValues
	if m.prev == nil && len(vals) > 0 {
		m.prev = make([]uint64, len(vals))
	}
	for i, v := range vals {
		if v.Final < m.prev[i] {
			return fmt.Errorf("measure event %d (%s) went backwards: %d -> %d",
				i, c.Measure.Names[i], m.prev[i], v.Final)
		}
		m.prev[i] = v.Final
	}
	return nil
}

// scaleBounded asserts every probe reading's scaled estimate stays inside
// its declared error bound: the count is reported as lying in
// [Raw, Scaled], so Raw <= Scaled, ErrorBound must equal the interval
// width, the extrapolation factor can never be below 1, the reported
// Final never undershoots the hardware-observed Raw, and a counter cannot
// have run longer than it was enabled.
type scaleBounded struct{}

func (scaleBounded) Name() string { return "scale-bounded" }

func (i scaleBounded) Check(c *Context) error { return i.verify(c) }
func (i scaleBounded) Final(c *Context) error { return i.verify(c) }

func (scaleBounded) verify(c *Context) error {
	if c.Measure == nil {
		return nil
	}
	for i, v := range c.Measure.LastValues {
		name := c.Measure.Names[i]
		if v.Raw > v.Scaled {
			return fmt.Errorf("measure event %d (%s): raw %d above scaled estimate %d", i, name, v.Raw, v.Scaled)
		}
		if v.ErrorBound != v.Scaled-v.Raw {
			return fmt.Errorf("measure event %d (%s): error bound %d != scaled-raw %d",
				i, name, v.ErrorBound, v.Scaled-v.Raw)
		}
		if v.ScaleFactor < 1 {
			return fmt.Errorf("measure event %d (%s): scale factor %g < 1", i, name, v.ScaleFactor)
		}
		if v.Final < v.Raw {
			return fmt.Errorf("measure event %d (%s): final %d below raw %d", i, name, v.Final, v.Raw)
		}
		if v.TimeRunning > v.TimeEnabled+1e-9 {
			return fmt.Errorf("measure event %d (%s): ran %.9fs but only enabled %.9fs",
				i, name, v.TimeRunning, v.TimeEnabled)
		}
	}
	return nil
}
