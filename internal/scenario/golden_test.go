package scenario_test

import (
	"flag"
	"os"
	"testing"

	"hetpapi/internal/scenario"
)

var update = flag.Bool("update", false, "regenerate the golden scenario files under testdata/golden")

// TestGoldenTraces is the behavior-drift tripwire: each reference scenario
// must reproduce its committed digest exactly. Any change to sim, sched,
// dvfs, power, thermal, perfevent or the workload models that alters
// observable behavior fails here; after verifying the change is
// intentional, regenerate with
//
//	go test ./internal/scenario -update
func TestGoldenTraces(t *testing.T) {
	goldenGate(t, scenario.Reference())
}

// TestGoldenValidationTraces applies the same gate to the validation
// micro-workload scenarios — the oracle shapes the accuracy scorecard
// (internal/validate) is built from.
func TestGoldenValidationTraces(t *testing.T) {
	goldenGate(t, scenario.Validation())
}

func goldenGate(t *testing.T, specs []scenario.Spec) {
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if !*update {
				t.Parallel()
			}
			res, err := scenario.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			got := scenario.GoldenOf(res)
			path := scenario.GoldenPath("testdata/golden", spec.Name)
			if *update {
				if err := scenario.SaveGolden(path, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (digest %s)", path, got.Digest[:12])
				return
			}
			want, err := scenario.LoadGolden(path)
			if err != nil {
				if os.IsNotExist(err) {
					t.Fatalf("no golden file for %q; run `go test ./internal/scenario -update` and commit %s", spec.Name, path)
				}
				t.Fatal(err)
			}
			if diff := want.Diff(got); diff != "" {
				t.Errorf("behavior drifted from %s:\n%s"+
					"if intentional, regenerate with `go test ./internal/scenario -update`", path, diff)
			}
		})
	}
}
