package scenario_test

import (
	"testing"

	"hetpapi/internal/scenario"
)

// orderInvariant records when its per-tick Check fires, interleaved with
// the spec hooks, to pin the audit-before-hooks ordering.
type orderInvariant struct {
	log *[]string
}

func (orderInvariant) Name() string                    { return "order-probe" }
func (o orderInvariant) Check(*scenario.Context) error { *o.log = append(*o.log, "inv"); return nil }
func (orderInvariant) Final(*scenario.Context) error   { return nil }

func tinySpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:    name,
		Machine: "homogeneous",
		TickSec: 0.01,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", Seconds: 0.1, CPUs: []int{0}},
		},
	}
}

// TestStepHooksFireInOrder registers two spec hooks next to the invariant
// audit and checks that every tick runs audit -> hook A -> hook B.
func TestStepHooksFireInOrder(t *testing.T) {
	var log []string
	spec := tinySpec("hooks-order")
	spec.Invariants = []scenario.Invariant{orderInvariant{log: &log}}
	spec.StepHooks = []scenario.StepHook{
		func(c *scenario.Context) {
			if c.Sim == nil || c.Spec == nil {
				t.Error("hook received incomplete context")
			}
			log = append(log, "a")
		},
		func(*scenario.Context) { log = append(log, "b") },
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("tiny spin scenario did not complete")
	}
	if len(log) == 0 || len(log)%3 != 0 {
		t.Fatalf("log has %d entries, want a non-zero multiple of 3", len(log))
	}
	for i := 0; i < len(log); i += 3 {
		if log[i] != "inv" || log[i+1] != "a" || log[i+2] != "b" {
			t.Fatalf("tick %d fired %v, want [inv a b]", i/3, log[i:i+3])
		}
	}
}

// TestStepHooksPreserveAudit checks that registering hooks leaves the
// run's observable behavior (digest) identical to a hook-free run: hooks
// are observers, not participants.
func TestStepHooksPreserveAudit(t *testing.T) {
	plain := tinySpec("hooks-digest")
	base, err := scenario.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	hooked := tinySpec("hooks-digest")
	hooked.StepHooks = []scenario.StepHook{func(*scenario.Context) { ticks++ }}
	got, err := scenario.Run(hooked)
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Fatal("hook never fired")
	}
	if got.Digest != base.Digest {
		t.Fatalf("digest changed with observer hook: %s vs %s", got.Digest[:12], base.Digest[:12])
	}
	if len(got.Violations) != 0 {
		t.Fatalf("violations with observer hook: %v", got.Violations)
	}
}

// TestSpecStopEndsRunEarly checks the external-stop path a daemon uses
// for graceful shutdown of an in-flight scenario.
func TestSpecStopEndsRunEarly(t *testing.T) {
	spec := tinySpec("hooks-stop")
	spec.Workloads[0].Seconds = 30
	spec.MaxSeconds = 60
	ticks := 0
	spec.StepHooks = []scenario.StepHook{func(*scenario.Context) { ticks++ }}
	spec.Stop = func() bool { return ticks >= 10 }
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("Stopped not set")
	}
	if res.Completed {
		t.Fatal("Completed must be false when stopped before workloads finish")
	}
	if res.ElapsedSec > 1 {
		t.Fatalf("run kept going for %.2fs after stop", res.ElapsedSec)
	}
}
