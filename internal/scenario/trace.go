package scenario

// Span-trace instrumentation for the harness layer. A run with
// Spec.Tracer set attaches the recorder to the machine stack-wide
// (sim exec spans and migrations, perfevent syscalls and faults, core
// degradation ladder) and adds the "scenario" track on top: a
// trace-context per run, a "run" span covering the whole scenario,
// "inject.*" instants for every applied injection and
// "workload.spawn"/"workload.done" instants for workload lifecycle.
// The context ID begun here is what ties the layers together: every
// event any layer emits while this run drives the machine carries it.

import (
	"hetpapi/internal/sim"
	"hetpapi/internal/spantrace"
)

// runTracer is the per-run tracing state of runOn.
type runTracer struct {
	rec *spantrace.Recorder
	trk int
	ctx uint64
}

// beginRunTrace attaches the spec's recorder to the machine and opens
// the run's trace context. Returns nil when the spec carries no tracer.
func beginRunTrace(s *sim.Machine, spec *Spec) *runTracer {
	if spec.Tracer == nil {
		return nil
	}
	rec := spec.Tracer
	s.SetTracer(rec)
	rt := &runTracer{rec: rec, trk: rec.Track("scenario")}
	rt.ctx = rec.BeginContext(spec.Name)
	rec.Instant(rt.trk, "run.start", "scenario", s.Now(),
		spantrace.Str("scenario", spec.Name),
		spantrace.Str("machine", s.HW.Name),
		spantrace.Int("seed", int(spec.Seed)))
	return rt
}

// end closes the run: open exec spans are flushed so the trace shows
// still-running tasks up to the end of the run, and the run-level span
// is emitted on the scenario track.
func (rt *runTracer) end(s *sim.Machine, res *Result, startSec float64) {
	if rt == nil {
		return
	}
	s.FlushTrace()
	completed := "false"
	if res.Completed {
		completed = "true"
	}
	rt.rec.Span(rt.trk, "run "+res.Name, "scenario", startSec, s.Now()-startSec,
		spantrace.Str("scenario", res.Name),
		spantrace.Str("machine", res.MachineName),
		spantrace.Str("completed", completed),
		spantrace.Int("violations", len(res.Violations)))
}

// workload emits a workload lifecycle instant.
func (rt *runTracer) workload(event, label string, atSec float64) {
	if rt == nil || !rt.rec.Enabled() {
		return
	}
	rt.rec.Instant(rt.trk, event, "workload", atSec, spantrace.Str("workload", label))
}

// traceInject mirrors an applied injection as an instant on the
// scenario track, with the kind-specific parameters as args. It runs
// inside apply, so it also covers injections applied by harnesses that
// drive apply through RunOn on a pre-attached machine.
func traceInject(s *sim.Machine, inj Inject) {
	r := s.Tracer()
	if !r.Enabled() {
		return
	}
	args := []spantrace.Arg{spantrace.Num("scheduled_at", inj.AtSec)}
	switch inj.Kind {
	case InjectMigrate:
		args = append(args, spantrace.Int("workload", inj.Workload),
			spantrace.Int("ncpus", len(inj.CPUs)))
	case InjectPowerLimit:
		args = append(args, spantrace.Num("pl1_w", inj.PL1W), spantrace.Num("pl2_w", inj.PL2W))
	case InjectFreqCap:
		args = append(args, spantrace.Str("class", inj.Class.String()), spantrace.Num("mhz", inj.MHz))
	case InjectHeat:
		args = append(args, spantrace.Num("heat_j", inj.HeatJ))
	case InjectCounterSteal, injectCounterRelease:
		args = append(args, spantrace.Str("class", inj.Class.String()))
	case InjectHotplugOff, InjectHotplugOn:
		args = append(args, spantrace.Int("cpu", inj.CPU))
	case InjectBufferPressure:
		args = append(args, spantrace.Int("cap", inj.Cap))
	}
	r.Instant(r.Track("scenario"), "inject."+string(inj.Kind), "inject", s.Now(), args...)
}
