package scenario

import (
	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

// Reference returns the standard golden-trace scenarios: one per machine
// model, each exercising the subsystems that model's paper results hinge
// on. Their digests are committed under testdata/golden/ and re-checked by
// `go test ./internal/scenario`; regenerate after intentional behavior
// changes with `go test ./internal/scenario -update`.
//
// The problem sizes are deliberately small — each scenario simulates a few
// seconds to a couple of minutes of machine time so the whole suite stays
// inside an ordinary test run.
func Reference() []Spec {
	return []Spec{
		{
			// The paper's desktop: HPL pinned one-thread-per-P-core
			// (logical CPUs 0,2,..,14 are the SMT-0 threads of the eight
			// P-cores), exercising sim+sched+dvfs+power under the
			// 65 W / 219 W RAPL machinery.
			Name:            "raptorlake-hpl-pcores",
			Machine:         "raptorlake",
			Seed:            11,
			MaxSeconds:      120,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{{
				Kind:     WorkloadHPL,
				Name:     "hpl",
				CPUs:     []int{0, 2, 4, 6, 8, 10, 12, 14},
				N:        16384,
				NB:       192,
				Strategy: workload.OpenBLASx86(),
				Seed:     1,
			}},
		},
		{
			// The passively cooled board: HPL on the two A72 big cores
			// with an injected heat spike, driving the step_wise thermal
			// throttle that produces the paper's Figure 3 collapse.
			Name:            "orangepi-thermal-throttle",
			Machine:         "orangepi800",
			Seed:            5,
			MaxSeconds:      300,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{{
				Kind:     WorkloadHPL,
				Name:     "hpl-big",
				CPUs:     []int{4, 5},
				N:        8192,
				NB:       128,
				Strategy: workload.OpenBLASArm(),
				Seed:     1,
			}},
			Injects: []Inject{
				{AtSec: 2, Kind: InjectHeat, HeatJ: 40},
			},
		},
		{
			// The tri-gear phone SoC: a migrating instruction loop plus a
			// pinned memory streamer, with a mid-run frequency cap on the
			// Performance-class cores and a forced migration — the
			// injection paths under a three-PMU topology.
			Name:            "dimensity-mixed-injects",
			Machine:         "dimensity9000",
			Seed:            23,
			MaxSeconds:      12,
			SamplePeriodSec: 0.5,
			Workloads: []WorkloadSpec{
				{Kind: WorkloadLoop, Name: "loop", InstrPerRep: 1e6, Reps: 20000},
				{Kind: WorkloadStream, Name: "stream", CPUs: []int{0, 1, 2, 3}, Instructions: 4e9, LLCMissRate: 0.4, Seed: 9},
				{Kind: WorkloadSpin, Name: "late-spin", Seconds: 2, StartSec: 3, CPUs: []int{7}},
			},
			Injects: []Inject{
				{AtSec: 1, Kind: InjectFreqCap, Class: hw.Performance, MHz: 1800},
				{AtSec: 1.5, Kind: InjectMigrate, Workload: 1, CPUs: []int{2, 3}},
				{AtSec: 3, Kind: InjectFreqCap, Class: hw.Performance, MHz: 0},
			},
		},
		{
			// Fault scenario: mid-run NMI-watchdog counter steal on the
			// P-core PMU while a multiplexed PAPI probe measures a pinned
			// HPL run. The probe's cycles group deschedules during the
			// steal window, so its readings must show the time-scaled
			// estimate with a nonzero error bound — and stay monotonic —
			// until the release.
			Name:            "raptorlake-watchdog-steal",
			Machine:         "raptorlake",
			Seed:            7,
			MaxSeconds:      60,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{{
				Kind:     WorkloadHPL,
				Name:     "hpl",
				CPUs:     []int{0, 2, 4, 6},
				N:        12288,
				NB:       128,
				Strategy: workload.OpenBLASx86(),
				Seed:     1,
			}},
			Measure: &MeasureSpec{
				Workload:  0,
				Events:    []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
				Multiplex: true,
			},
			Injects: []Inject{
				{AtSec: 1.5, Kind: InjectCounterSteal, Class: hw.Performance, DurSec: 2},
			},
		},
		{
			// Fault scenario: the big.LITTLE board under CPU hotplug. A
			// counter steal on the LITTLE PMU covers the probe's start, so
			// the first Start attempts defer with EBUSY until the release;
			// mid-run one A53 is hotplugged off (killing the harness's
			// CPU-wide descriptors there) and later brought back.
			Name:            "biglittle-hotplug",
			Machine:         "orangepi800",
			Seed:            13,
			MaxSeconds:      15,
			SamplePeriodSec: 0.25,
			Workloads: []WorkloadSpec{{
				Kind:        WorkloadLoop,
				Name:        "little-loop",
				CPUs:        []int{0, 1, 2, 3},
				InstrPerRep: 1e6,
				Reps:        6000,
			}},
			Measure: &MeasureSpec{
				Workload: 0,
				Events:   []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
				StartSec: 0.1,
			},
			Injects: []Inject{
				{AtSec: 0, Kind: InjectCounterSteal, Class: hw.Efficiency, DurSec: 0.5},
				{AtSec: 2, Kind: InjectHotplugOff, CPU: 1},
				{AtSec: 3.5, Kind: InjectHotplugOn, CPU: 1},
			},
		},
		{
			// The homogeneous baseline: SMT contention plus a mid-run
			// power-limit drop on a single-PMU machine.
			Name:            "homogeneous-powercap",
			Machine:         "homogeneous",
			Seed:            3,
			MaxSeconds:      10,
			SamplePeriodSec: 0.5,
			Workloads: []WorkloadSpec{
				{Kind: WorkloadLoop, Name: "loop-a", CPUs: []int{0, 1}, InstrPerRep: 1e6, Reps: 30000},
				{Kind: WorkloadSpin, Name: "spin", CPUs: []int{2}, Seconds: 6},
			},
			Injects: []Inject{
				{AtSec: 2, Kind: InjectPowerLimit, PL1W: 35, PL2W: 60},
			},
		},
	}
}
