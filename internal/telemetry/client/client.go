// Package client is the Go client of the hetpapid HTTP API, used by the
// livemon example and by the daemon's own tests. It speaks the wire types
// of internal/telemetry.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"hetpapi/internal/telemetry"
	"hetpapi/internal/telemetry/httpobs"
)

// Client talks to one hetpapid instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr telemetry.APIError
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", path, apiErr.String())
		}
		return fmt.Errorf("%s: http %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*string); ok {
		*raw = string(body)
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s: decoding response: %w", path, err)
	}
	return nil
}

// Health fetches /health.
func (c *Client) Health(ctx context.Context) (telemetry.HealthInfo, error) {
	var out telemetry.HealthInfo
	err := c.get(ctx, "/health", nil, &out)
	return out, err
}

// Machines fetches /machines.
func (c *Client) Machines(ctx context.Context) ([]telemetry.MachineInfo, error) {
	var out []telemetry.MachineInfo
	err := c.get(ctx, "/machines", nil, &out)
	return out, err
}

// Series fetches /series for one machine.
func (c *Client) Series(ctx context.Context, machine string) ([]telemetry.SeriesInfo, error) {
	var out []telemetry.SeriesInfo
	err := c.get(ctx, "/series", url.Values{"machine": {machine}}, &out)
	return out, err
}

// Query runs a /query request.
func (c *Client) Query(ctx context.Context, q telemetry.QueryRequest) (*telemetry.QueryResponse, error) {
	var out telemetry.QueryResponse
	if err := c.get(ctx, "/query", q.Values(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var out string
	err := c.get(ctx, "/metrics", nil, &out)
	return out, err
}

// Status fetches /status, the daemon's serving-path telemetry:
// per-endpoint latency/error accounting and SLO attainment.
func (c *Client) Status(ctx context.Context) (httpobs.Status, error) {
	var out httpobs.Status
	err := c.get(ctx, "/status", nil, &out)
	return out, err
}
