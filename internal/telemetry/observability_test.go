package telemetry_test

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hetpapi/internal/telemetry"
)

// fleetSeededServer builds a store carrying a small streamed population
// (metadata + machine scalars + per-core-type counters) and a server.
func fleetSeededServer(t *testing.T) (*telemetry.Store, *httptest.Server) {
	t.Helper()
	st := telemetry.NewStore(telemetry.Config{Capacity: 256, RungCapacity: 256})
	for m := 0; m < 3; m++ {
		machine := "m000" + string(rune('0'+m))
		st.SetMeta(machine, telemetry.MachineMeta{Template: "tpl", Model: "homogeneous"})
		for i := 0; i < 30; i++ {
			ts := float64(i) / 2
			st.Append(telemetry.Key{Machine: machine, Series: "power_w"}, ts, 40+float64(m))
			st.Append(telemetry.Key{Machine: machine, Series: telemetry.TypeSeriesName("core", "instructions")}, ts, float64(i)*1e6)
		}
	}
	srv := telemetry.NewServer(st, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return st, ts
}

// TestGzipNegotiation: /series, /query and /fleet/query honor
// Accept-Encoding — gzip bodies for clients that ask, identity
// otherwise, correct Content-Encoding and Vary headers, identical
// decoded payloads either way.
func TestGzipNegotiation(t *testing.T) {
	_, ts := fleetSeededServer(t)
	for _, path := range []string{
		"/series?machine=m0000",
		"/query?machine=m0000&series=power_w",
		"/fleet/query?rung=1s",
	} {
		fetch := func(acceptGzip bool) (*http.Response, []byte) {
			req, _ := http.NewRequest("GET", ts.URL+path, nil)
			if acceptGzip {
				req.Header.Set("Accept-Encoding", "gzip")
			} else {
				// Neutralize the transport's automatic gzip so the
				// server sees no Accept-Encoding at all.
				req.Header.Set("Accept-Encoding", "identity")
			}
			resp, err := http.DefaultTransport.RoundTrip(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return resp, body
		}

		plainResp, plainBody := fetch(false)
		if plainResp.StatusCode != 200 || plainResp.Header.Get("Content-Encoding") == "gzip" {
			t.Fatalf("%s identity fetch: status %d encoding %q", path, plainResp.StatusCode, plainResp.Header.Get("Content-Encoding"))
		}
		if !strings.Contains(plainResp.Header.Get("Vary"), "Accept-Encoding") {
			t.Fatalf("%s identity response missing Vary: Accept-Encoding", path)
		}

		gzResp, gzBody := fetch(true)
		if gzResp.StatusCode != 200 || gzResp.Header.Get("Content-Encoding") != "gzip" {
			t.Fatalf("%s gzip fetch: status %d encoding %q", path, gzResp.StatusCode, gzResp.Header.Get("Content-Encoding"))
		}
		zr, err := gzip.NewReader(strings.NewReader(string(gzBody)))
		if err != nil {
			t.Fatalf("%s gzip body does not decode: %v", path, err)
		}
		decoded, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s gzip stream truncated: %v", path, err)
		}
		if string(decoded) != string(plainBody) {
			t.Fatalf("%s gzip payload differs from identity payload", path)
		}
		if len(gzBody) >= len(plainBody) {
			t.Fatalf("%s gzip body (%d bytes) not smaller than identity (%d bytes)", path, len(gzBody), len(plainBody))
		}
	}
}

// TestQueryRungParameter: /query?rung= returns downsampled buckets
// instead of raw points, and rejects unknown rungs.
func TestQueryRungParameter(t *testing.T) {
	_, ts := fleetSeededServer(t)

	var q telemetry.QueryResponse
	resp, err := http.Get(ts.URL + "/query?machine=m0000&series=power_w&rung=1s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("rung query status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Rung != "1s" || len(q.Points) != 0 {
		t.Fatalf("rung response %+v should carry buckets, not points", q)
	}
	// 30 samples at 0.5s cadence → 15 1s-buckets of 2 samples each.
	if len(q.Buckets) != 15 {
		t.Fatalf("%d buckets, want 15", len(q.Buckets))
	}
	for _, b := range q.Buckets {
		if b.Agg.N != 2 || b.Agg.Min != 40 || b.Agg.Max != 40 {
			t.Fatalf("bucket %+v", b)
		}
	}

	resp, err = http.Get(ts.URL + "/query?machine=m0000&series=power_w&rung=7s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unknown rung status %d, want 400", resp.StatusCode)
	}
}

// TestFleetQueryEndpoint: the population endpoint groups by core type
// and kind, honors filters, and rejects bad parameters.
func TestFleetQueryEndpoint(t *testing.T) {
	_, ts := fleetSeededServer(t)

	get := func(query string) (int, *telemetry.FleetQueryResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/fleet/query" + query)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return resp.StatusCode, nil
		}
		var out telemetry.FleetQueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad body %s: %v", body, err)
		}
		return resp.StatusCode, &out
	}

	// Default rung is 10s; both groups cover all three machines.
	code, out := get("")
	if code != 200 || out.Rung != "10s" || out.Machines != 3 || len(out.Groups) != 2 {
		t.Fatalf("default query: code %d resp %+v", code, out)
	}
	for _, g := range out.Groups {
		if g.Machines != 3 || len(g.Timeline) != 0 {
			t.Fatalf("group %+v (timeline must be opt-in)", g)
		}
	}

	code, out = get("?rung=1s&kind=power_w&timeline=1")
	if code != 200 || len(out.Groups) != 1 {
		t.Fatalf("filtered query: code %d resp %+v", code, out)
	}
	g := out.Groups[0]
	if g.Type != "machine" || g.Kind != "power_w" || g.Merged.Min != 40 || g.Merged.Max != 42 {
		t.Fatalf("power group %+v", g)
	}
	if len(g.Timeline) == 0 {
		t.Fatal("timeline requested but absent")
	}

	if code, _ := get("?rung=raw"); code != 400 {
		t.Fatalf("raw rung status %d, want 400", code)
	}
	if code, _ := get("?rung=2h"); code != 400 {
		t.Fatalf("unknown rung status %d, want 400", code)
	}
	if code, _ := get("?from=bogus"); code != 400 {
		t.Fatalf("bad bound status %d, want 400", code)
	}
}

// TestRangeIntoReusesBuffers: the pooled copy-on-read path the /query
// handler uses must not allocate once its buffer has grown, while the
// plain Range path allocates a fresh slice every call — the reduction
// the point pool exists for.
func TestRangeIntoReusesBuffers(t *testing.T) {
	st := telemetry.NewStore(telemetry.Config{Capacity: 4096})
	k := telemetry.Key{Machine: "m", Series: "power_w"}
	for i := 0; i < 4096; i++ {
		st.Append(k, float64(i), float64(i))
	}

	buf := make([]telemetry.Point, 0, 4096)
	pooled := testing.AllocsPerRun(50, func() {
		pts, ok := st.RangeInto(k, -1, -1, buf[:0])
		if !ok || len(pts) != 4096 {
			t.Fatalf("RangeInto returned %d points", len(pts))
		}
	})
	if pooled != 0 {
		t.Fatalf("pooled read path allocates %.0f times per query, want 0", pooled)
	}

	plain := testing.AllocsPerRun(50, func() {
		pts, ok := st.Range(k, -1, -1)
		if !ok || len(pts) != 4096 {
			t.Fatalf("Range returned %d points", len(pts))
		}
	})
	if plain < 1 {
		t.Fatalf("copy-on-read Range allocates %.0f times per query; the pool assertion above is vacuous", plain)
	}
}

// TestFleetDashboard: /fleet/ui serves the self-contained HTML page.
func TestFleetDashboard(t *testing.T) {
	_, ts := fleetSeededServer(t)
	resp, err := http.Get(ts.URL + "/fleet/ui")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("dashboard status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("dashboard content type %q", ct)
	}
	html := string(body)
	for _, want := range []string{"/fleet/query", "/fleet", "selfoverhead", "canvas", "hetpapi fleet"} {
		if !strings.Contains(html, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}
