package telemetry

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetpapi/internal/profile"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/telemetry/httpobs"
	"hetpapi/internal/validate"
)

// Server is the HTTP face of the store: the hetpapid daemon mounts its
// Handler, and tests drive it through httptest. Endpoints:
//
//	GET /health            liveness + store totals
//	GET /machines          collector registry with self-overhead gauges
//	GET /series?machine=M  series inventory of one machine
//	GET /query?machine=M&series=S[&from=F][&to=T][&agg=1][&rung=R]
//	GET /query?machine=M&kind=K&by=type
//	GET /fleet/query?rung=R[&from=F][&to=T][&type=T][&kind=K][&template=T][&timeline=1]
//	GET /fleet/ui          self-contained live fleet dashboard (HTML)
//	GET /degradations[?machine=M]  latest probe degradation tallies
//	GET /trace?machine=M   live span trace as Perfetto JSON
//	GET /profile?machine=M statistical profile as gzipped pprof proto
//	GET /validate          counter-accuracy scorecard (when published)
//	GET /metrics           Prometheus-style text exposition
//	GET /status            serving-path telemetry: per-endpoint latency,
//	                       errors, SLO attainment and the slow ring
//
// Every response body is JSON except /metrics and /fleet/ui. Errors —
// including 404s for unknown paths and 405s for non-GET methods —
// carry an APIError body ({"status":...,"error":...}). All handlers
// serve from copy-on-read store snapshots, so they never block
// ingestion beyond a shard's brief read lock; /series, /query and
// /fleet/query negotiate gzip via Accept-Encoding. Extra endpoints
// (the daemon's /fleet report) are attached with Mount before the
// first Handler call.
//
// Every request is accounted by an httpobs observer wrapping the whole
// chain (including the request-timeout layer, so timeout 503s count):
// /status serves its report, /metrics carries its hetpapid_http_*
// families, and AttachHTTPTracer lands one span per request in the
// same Perfetto export format as the simulator's traces.
type Server struct {
	store   *Store
	timeout time.Duration
	start   time.Time

	mu       sync.RWMutex
	machines map[string]*machineEntry

	// extra holds endpoints mounted by the embedding binary (the
	// hetpapid daemon mounts the fleet-report handler here), keeping
	// this package free of upward dependencies.
	extraMu sync.Mutex
	extra   map[string]http.Handler

	// scorecard is the counter-accuracy validation scorecard computed at
	// daemon startup (nil when validation is disabled); /validate serves
	// it as the deployment's measurement-trust attestation.
	scorecardMu sync.RWMutex
	scorecard   *validate.Scorecard

	// obs is the serving-path observer: every request through Handler is
	// accounted here, /status serves its report.
	obs *httpobs.Obs

	// httpTracer is the span recorder serving-path spans are emitted to
	// (nil when the daemon runs without tracing); /trace?machine=http
	// serves its buffer.
	httpTracerMu sync.Mutex
	httpTracer   *spantrace.Recorder
}

type machineEntry struct {
	scenarioName string
	model        string
	col          *Collector
	running      atomic.Bool

	// tracer is the machine's span recorder (nil when the daemon runs
	// without tracing); /trace serves its live buffer.
	tracerMu sync.Mutex
	tracer   *spantrace.Recorder

	// prof is the machine's statistical profiler (nil when the daemon
	// runs without profiling); /profile serves its pprof export.
	profMu sync.Mutex
	prof   *profile.Collector
}

func (e *machineEntry) recorder() *spantrace.Recorder {
	e.tracerMu.Lock()
	defer e.tracerMu.Unlock()
	return e.tracer
}

func (e *machineEntry) profiler() *profile.Collector {
	e.profMu.Lock()
	defer e.profMu.Unlock()
	return e.prof
}

// builtinEndpoints are the server's own mux patterns, pre-registered
// with the request observer so each gets its own accounting bucket.
var builtinEndpoints = []string{
	"/health", "/validate", "/machines", "/series", "/query",
	"/fleet/query", "/fleet/ui", "/degradations", "/trace", "/profile",
	"/metrics", "/status",
}

// NewServer wraps a store. requestTimeout bounds each request's handler
// time (0 disables the limit).
func NewServer(store *Store, requestTimeout time.Duration) *Server {
	return &Server{
		store:    store,
		timeout:  requestTimeout,
		start:    time.Now(),
		machines: map[string]*machineEntry{},
		obs:      httpobs.New(httpobs.Config{Endpoints: builtinEndpoints}),
	}
}

// Obs exposes the serving-path observer, for the daemon to set SLO
// targets on and for tests to inspect directly.
func (s *Server) Obs() *httpobs.Obs { return s.obs }

// SetSLO updates the serving targets /status judges endpoints against.
func (s *Server) SetSLO(latencyMs, errorPct float64) { s.obs.SetSLO(latencyMs, errorPct) }

// AttachHTTPTracer hands the serving path a span recorder: every
// request emits one "http.<endpoint>" span, and /trace?machine=http
// serves the buffer. A nil recorder detaches.
func (s *Server) AttachHTTPTracer(rec *spantrace.Recorder) {
	s.httpTracerMu.Lock()
	s.httpTracer = rec
	s.httpTracerMu.Unlock()
	s.obs.AttachTracer(rec)
}

// Register announces a machine (one collector goroutine) to the API.
func (s *Server) Register(machine, scenarioName, model string, col *Collector) {
	s.mu.Lock()
	s.machines[machine] = &machineEntry{scenarioName: scenarioName, model: model, col: col}
	s.mu.Unlock()
}

// AttachTracer hands a machine's span recorder to the API; /trace
// serves its buffer and /metrics exports its span counters. A nil
// recorder detaches.
func (s *Server) AttachTracer(machine string, rec *spantrace.Recorder) {
	s.mu.RLock()
	e := s.machines[machine]
	s.mu.RUnlock()
	if e != nil {
		e.tracerMu.Lock()
		e.tracer = rec
		e.tracerMu.Unlock()
	}
}

// AttachProfiler hands a machine's statistical profiler to the API;
// /profile serves its pprof export and /metrics exports its sample
// counters. A nil collector detaches.
func (s *Server) AttachProfiler(machine string, col *profile.Collector) {
	s.mu.RLock()
	e := s.machines[machine]
	s.mu.RUnlock()
	if e != nil {
		e.profMu.Lock()
		e.prof = col
		e.profMu.Unlock()
	}
}

// SetRunning flips a machine's in-flight flag.
func (s *Server) SetRunning(machine string, running bool) {
	s.mu.RLock()
	e := s.machines[machine]
	s.mu.RUnlock()
	if e != nil {
		e.running.Store(running)
	}
}

// Mount attaches an extra endpoint under the given mux pattern. Call
// before Handler; later Handler calls pick mounted handlers up. The
// fleet layer mounts its /fleet report endpoint here, so telemetry
// never needs to import it.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.extraMu.Lock()
	if s.extra == nil {
		s.extra = map[string]http.Handler{}
	}
	s.extra[pattern] = h
	s.extraMu.Unlock()
	s.obs.Register(pattern)
}

// SetScorecard publishes the counter-accuracy scorecard for /validate to
// serve, replacing any previous one.
func (s *Server) SetScorecard(card *validate.Scorecard) {
	s.scorecardMu.Lock()
	s.scorecard = card
	s.scorecardMu.Unlock()
}

// Handler returns the fully composed HTTP handler: request observer
// around method guard around the (when configured) per-request timeout
// around the routing mux. The observer sits outermost so timeout 503s,
// 405s and unknown-path 404s all count into the serving metrics. The
// series-heavy endpoints (/series, /query, /fleet/query) negotiate
// gzip compression.
func (s *Server) Handler() http.Handler {
	return s.obs.Middleware(s.UninstrumentedHandler())
}

// UninstrumentedHandler is Handler without the request observer — the
// bare serving chain. BenchmarkHTTPObsOverhead compares the two to
// gate the middleware's cost; production callers want Handler.
func (s *Server) UninstrumentedHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/validate", s.handleValidate)
	mux.HandleFunc("/machines", s.handleMachines)
	mux.Handle("/series", gzipHandler(http.HandlerFunc(s.handleSeries)))
	mux.Handle("/query", gzipHandler(http.HandlerFunc(s.handleQuery)))
	mux.Handle("/fleet/query", gzipHandler(http.HandlerFunc(s.handleFleetQuery)))
	mux.HandleFunc("/fleet/ui", s.handleFleetUI)
	mux.HandleFunc("/degradations", s.handleDegradations)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/", s.handleNotFound)
	s.extraMu.Lock()
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	s.extraMu.Unlock()
	var h http.Handler = mux
	if s.timeout > 0 {
		h = http.TimeoutHandler(h, s.timeout, `{"status":503,"error":"request timed out"}`)
	}
	return methodGuard(h)
}

// methodGuard rejects non-read methods with a JSON 405: the whole API
// surface is read-only.
func methodGuard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed (read-only API)", r.Method)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// handleNotFound is the mux fallback: unknown paths get the same JSON
// error shape as every other failure, and — because the observer wraps
// the whole chain — count into the error metrics under the "other"
// endpoint bucket.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
}

// handleStatus serves the serving path's own telemetry: per-endpoint
// request/error/latency accounting, SLO attainment with burn flags,
// and the slow-request ring.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.obs.Report())
}

// WriteJSON writes v as an indented JSON response with the given status
// code. Exported for handlers mounted onto the server from other
// packages (the fleet layer's /fleet endpoint).
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// WriteAPIError writes an APIError response, for mounted handlers.
func WriteAPIError(w http.ResponseWriter, code int, format string, args ...any) {
	WriteJSON(w, code, APIError{Status: code, Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) { WriteJSON(w, code, v) }

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	WriteAPIError(w, code, format, args...)
}

// gzipWriterPool recycles compressors across requests; one gzip.Writer
// holds sizable window buffers.
var gzipWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(nil) }}

// gzipResponseWriter funnels the handler's body through a gzip stream
// while leaving headers and status codes alone.
type gzipResponseWriter struct {
	http.ResponseWriter
	zw *gzip.Writer
}

func (g *gzipResponseWriter) Write(b []byte) (int, error) { return g.zw.Write(b) }

// gzipHandler negotiates gzip content encoding: when the client's
// Accept-Encoding lists gzip, the wrapped handler's response body is
// compressed and tagged Content-Encoding: gzip. Series payloads are
// floating-point JSON that compresses 5-10×, which matters once
// /fleet/query aggregates thousands of machines.
func gzipHandler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Add("Vary", "Accept-Encoding")
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			h.ServeHTTP(w, r)
			return
		}
		zw := gzipWriterPool.Get().(*gzip.Writer)
		zw.Reset(w)
		w.Header().Set("Content-Encoding", "gzip")
		h.ServeHTTP(&gzipResponseWriter{ResponseWriter: w, zw: zw}, r)
		zw.Close()
		gzipWriterPool.Put(zw)
	})
}

// knownMachine reports whether a machine id is registered or present in
// the store (stores fed outside a daemon have no registry entries).
func (s *Server) knownMachine(name string) bool {
	s.mu.RLock()
	_, ok := s.machines[name]
	s.mu.RUnlock()
	if ok {
		return true
	}
	return len(s.store.SeriesOf(name)) > 0
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	nm := len(s.machines)
	s.mu.RUnlock()
	if n := len(s.store.Machines()); n > nm {
		nm = n
	}
	writeJSON(w, http.StatusOK, HealthInfo{
		Status:    "ok",
		UptimeSec: time.Since(s.start).Seconds(),
		Machines:  nm,
		Series:    s.store.NumSeries(),
	})
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.machines))
	for name := range s.machines {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]MachineInfo, 0, len(names))
	for _, name := range names {
		s.mu.RLock()
		e := s.machines[name]
		s.mu.RUnlock()
		info := e.col.Info()
		info.Name = name
		info.Scenario = e.scenarioName
		info.Model = e.model
		info.Running = e.running.Load()
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	machine := r.URL.Query().Get("machine")
	if machine == "" {
		writeError(w, http.StatusBadRequest, "missing machine parameter")
		return
	}
	if !s.knownMachine(machine) {
		writeError(w, http.StatusNotFound, "unknown machine %q", machine)
		return
	}
	names := s.store.SeriesOf(machine)
	out := make([]SeriesInfo, 0, len(names))
	for _, name := range names {
		k := Key{machine, name}
		agg, _ := s.store.Aggregate(k)
		out = append(out, SeriesInfo{Name: name, Points: s.store.Len(k), Agg: agg})
	}
	writeJSON(w, http.StatusOK, out)
}

// parseBound parses an optional float query parameter, defaulting to -1
// (open bound).
func parseBound(q string) (float64, error) {
	if q == "" {
		return -1, nil
	}
	return strconv.ParseFloat(q, 64)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	machine := q.Get("machine")
	if machine == "" {
		writeError(w, http.StatusBadRequest, "missing machine parameter")
		return
	}
	if !s.knownMachine(machine) {
		writeError(w, http.StatusNotFound, "unknown machine %q", machine)
		return
	}
	series, kind := q.Get("series"), q.Get("kind")
	switch {
	case series == "" && kind == "":
		writeError(w, http.StatusBadRequest, "need series= or kind= parameter")
		return
	case series != "" && kind != "":
		writeError(w, http.StatusBadRequest, "series= and kind= are mutually exclusive")
		return
	}
	if kind != "" {
		if by := q.Get("by"); by != "" && by != "type" {
			writeError(w, http.StatusBadRequest, "unsupported by=%q (only by=type)", by)
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{
			Machine: machine,
			Groups:  s.store.TypeAggregates(machine, kind),
		})
		return
	}
	from, err := parseBound(q.Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from parameter: %v", err)
		return
	}
	to, err := parseBound(q.Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad to parameter: %v", err)
		return
	}
	key := Key{machine, series}
	if rungName := q.Get("rung"); rungName != "" && rungName != "raw" {
		rung, err := ParseRung(rungName)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad rung parameter: %v", err)
			return
		}
		buckets, ok := s.store.RungRange(key, rung, from, to)
		if !ok {
			writeError(w, http.StatusNotFound, "machine %q has no series %q", machine, series)
			return
		}
		resp := QueryResponse{Machine: machine, Series: series, Rung: rung.String(), Buckets: buckets}
		if v := q.Get("agg"); v == "1" || v == "true" {
			agg, _ := s.store.Aggregate(key)
			resp.Aggregate = &agg
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Copy-on-read through a pooled buffer: the hot polling path (live
	// dashboards re-fetch every second) reuses one point slice per
	// request instead of allocating a fresh snapshot each time. The
	// buffer is returned to the pool only after writeJSON has fully
	// marshalled the response.
	bufp := pointBufPool.Get().(*[]Point)
	pts, ok := s.store.RangeInto(key, from, to, (*bufp)[:0])
	if !ok {
		pointBufPool.Put(bufp)
		writeError(w, http.StatusNotFound, "machine %q has no series %q", machine, series)
		return
	}
	resp := QueryResponse{Machine: machine, Series: series, Points: pts}
	if v := q.Get("agg"); v == "1" || v == "true" {
		agg, _ := s.store.Aggregate(key)
		resp.Aggregate = &agg
	}
	writeJSON(w, http.StatusOK, resp)
	*bufp = pts[:0]
	pointBufPool.Put(bufp)
}

// pointBufPool recycles /query's copy-on-read point buffers across
// requests.
var pointBufPool = sync.Pool{New: func() any {
	buf := make([]Point, 0, 4096)
	return &buf
}}

// handleDegradations reports, per machine carrying a measurement probe,
// the latest graceful-degradation tallies and probe readings — the
// operational view of how hard the perf substrate is pushing back. An
// optional machine= parameter restricts the listing.
func (s *Server) handleDegradations(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("machine")
	if filter != "" && !s.knownMachine(filter) {
		writeError(w, http.StatusNotFound, "unknown machine %q", filter)
		return
	}
	out := []DegradationInfo{}
	for _, machine := range s.store.Machines() {
		if filter != "" && machine != filter {
			continue
		}
		info := DegradationInfo{Machine: machine, Counters: map[string]float64{}}
		finals := map[string]float64{}
		bounds := map[string]float64{}
		var events []string
		for _, name := range s.store.SeriesOf(machine) {
			agg, ok := s.store.Aggregate(Key{machine, name})
			if !ok {
				continue
			}
			switch {
			case strings.HasPrefix(name, "degradation/"):
				info.Counters[strings.TrimPrefix(name, "degradation/")] = agg.Last
			case strings.HasPrefix(name, "measure/"):
				parts := strings.Split(name, "/")
				if len(parts) != 3 {
					continue
				}
				switch parts[2] {
				case "final":
					finals[parts[1]] = agg.Last
					events = append(events, parts[1])
				case "error_bound":
					bounds[parts[1]] = agg.Last
				}
			}
		}
		if len(info.Counters) == 0 && len(events) == 0 {
			continue // no probe on this machine
		}
		sort.Strings(events)
		for _, ev := range events {
			info.Events = append(info.Events, MeasureValueInfo{
				Event: ev, Final: finals[ev], ErrorBound: bounds[ev],
			})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleFleetQuery serves the population-wide streaming aggregation
// view: per-(core type, event kind) aggregates over one downsampled
// rung and time window, merged across every machine in the store. The
// merge reads only pre-computed rung buckets, so cost is bounded by
// series × RungCapacity regardless of how much raw data the fleet
// streamed.
func (s *Server) handleFleetQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	rungName := q.Get("rung")
	if rungName == "" {
		rungName = "10s"
	}
	rung, err := ParseRung(rungName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad rung parameter: %v", err)
		return
	}
	from, err := parseBound(q.Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from parameter: %v", err)
		return
	}
	to, err := parseBound(q.Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad to parameter: %v", err)
		return
	}
	tl := q.Get("timeline")
	resp, err := s.store.FleetQuery(FleetQueryRequest{
		Rung:     rung,
		FromSec:  from,
		ToSec:    to,
		Type:     q.Get("type"),
		Kind:     q.Get("kind"),
		Template: q.Get("template"),
		Machine:  q.Get("machine"),
		Timeline: tl == "1" || tl == "true",
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleValidate serves the startup counter-accuracy scorecard: every
// oracle row, the overhead and sampling ledgers, the summary and the
// reproducibility digest. 404 until the daemon has published one.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	s.scorecardMu.RLock()
	card := s.scorecard
	s.scorecardMu.RUnlock()
	if card == nil {
		writeError(w, http.StatusNotFound, "no validation scorecard (daemon running with -validate=false, or startup validation still pending)")
		return
	}
	writeJSON(w, http.StatusOK, card)
}

// handleTrace serves a machine's live span-trace buffer as Chrome
// trace-event / Perfetto JSON — download and open in ui.perfetto.dev.
// The snapshot is copy-on-read; recording continues while it streams.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	machine := r.URL.Query().Get("machine")
	if machine == "" {
		writeError(w, http.StatusBadRequest, "missing machine parameter")
		return
	}
	var rec *spantrace.Recorder
	if machine == "http" {
		// The serving path's own spans, recorded via AttachHTTPTracer.
		s.httpTracerMu.Lock()
		rec = s.httpTracer
		s.httpTracerMu.Unlock()
		if rec == nil {
			writeError(w, http.StatusNotFound, "no serving-path span recorder (tracing disabled)")
			return
		}
	} else {
		s.mu.RLock()
		e := s.machines[machine]
		s.mu.RUnlock()
		if e == nil {
			writeError(w, http.StatusNotFound, "unknown machine %q", machine)
			return
		}
		rec = e.recorder()
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "machine %q has no span recorder (tracing disabled)", machine)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("inline; filename=%q", machine+"-trace.json"))
	if err := spantrace.WriteJSON(w, rec.Snapshot()); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// handleProfile serves a machine's statistical profile as a gzipped
// pprof profile.proto — fetch and open with `go tool pprof`. The last
// completed run's profile is preferred; before the first run finishes,
// the live in-progress snapshot is served instead.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	machine := r.URL.Query().Get("machine")
	if machine == "" {
		writeError(w, http.StatusBadRequest, "missing machine parameter")
		return
	}
	s.mu.RLock()
	e := s.machines[machine]
	s.mu.RUnlock()
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown machine %q", machine)
		return
	}
	col := e.profiler()
	if col == nil {
		writeError(w, http.StatusNotFound, "machine %q has no profiler (profiling disabled)", machine)
		return
	}
	prof := col.LastRun()
	if prof == nil {
		prof = col.Snapshot()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", machine+"-profile.pb.gz"))
	if err := profile.WritePprof(w, prof); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// metricFamily accumulates one exposition family's sample lines.
type metricFamily struct {
	name, help, kind string
	lines            []string
}

func (f *metricFamily) add(labels string, v float64) {
	f.lines = append(f.lines, fmt.Sprintf("%s{%s} %g", f.name, labels, v))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	freq := &metricFamily{name: "hetpapi_cpu_frequency_mhz", help: "Per-CPU frequency during the last tick.", kind: "gauge"}
	temp := &metricFamily{name: "hetpapi_pkg_temperature_celsius", help: "Package thermal zone temperature.", kind: "gauge"}
	pwr := &metricFamily{name: "hetpapi_pkg_power_watts", help: "Package power over the last tick.", kind: "gauge"}
	wall := &metricFamily{name: "hetpapi_wall_power_watts", help: "AC-side wall meter power.", kind: "gauge"}
	energy := &metricFamily{name: "hetpapi_pkg_energy_joules_total", help: "Cumulative RAPL package energy.", kind: "counter"}
	ctr := &metricFamily{name: "hetpapi_counter_total", help: "System-wide perf counter value per CPU, core type and event kind.", kind: "counter"}
	degr := &metricFamily{name: "hetpapi_degradation_total", help: "Graceful-degradation actions performed by the measurement probe, by action.", kind: "counter"}
	ticks := &metricFamily{name: "hetpapid_ticks_total", help: "Simulator ticks observed by the collector.", kind: "counter"}
	runs := &metricFamily{name: "hetpapid_runs_total", help: "Completed scenario runs.", kind: "counter"}
	ingest := &metricFamily{name: "hetpapid_ingest_seconds_total", help: "Wall-clock seconds spent in telemetry ingestion.", kind: "counter"}
	ovhTick := &metricFamily{name: "hetpapid_overhead_per_tick_seconds", help: "Mean ingestion wall time per simulator tick.", kind: "gauge"}
	ovhRatio := &metricFamily{name: "hetpapid_overhead_ratio", help: "Ingestion wall time as a fraction of the run loop wall time.", kind: "gauge"}
	spEmit := &metricFamily{name: "hetpapid_spans_emitted_total", help: "Span-trace events accepted by the machine's recorder.", kind: "counter"}
	spKeep := &metricFamily{name: "hetpapid_spans_retained", help: "Span-trace events currently held in the recorder's rings.", kind: "gauge"}
	spDrop := &metricFamily{name: "hetpapid_spans_dropped_total", help: "Span-trace events dropped by ring wraparound or rejected as malformed.", kind: "counter"}
	pfEmit := &metricFamily{name: "hetpapiprof_samples_emitted_total", help: "Overflow sample records retained by the machine's statistical profiler.", kind: "counter"}
	pfLost := &metricFamily{name: "hetpapiprof_samples_lost_total", help: "Overflow sample records dropped by ring pressure before a drain.", kind: "counter"}

	for _, machine := range s.store.Machines() {
		ml := fmt.Sprintf("machine=%q", machine)
		for _, name := range s.store.SeriesOf(machine) {
			agg, ok := s.store.Aggregate(Key{machine, name})
			if !ok {
				continue
			}
			switch {
			case strings.HasPrefix(name, "cpu") && strings.HasSuffix(name, "_mhz"):
				cpu := strings.TrimSuffix(strings.TrimPrefix(name, "cpu"), "_mhz")
				freq.add(fmt.Sprintf("%s,cpu=%q", ml, cpu), agg.Last)
			case name == "temp_c":
				temp.add(ml, agg.Last)
			case name == "power_w":
				pwr.add(ml, agg.Last)
			case name == "wall_w":
				wall.add(ml, agg.Last)
			case name == "energy_j":
				energy.add(ml, agg.Last)
			case strings.HasPrefix(name, "degradation/"):
				degr.add(fmt.Sprintf("%s,action=%q", ml, strings.TrimPrefix(name, "degradation/")), agg.Last)
			default:
				if cpu, typeName, kind, ok := parseCounterSeries(name); ok {
					ctr.add(fmt.Sprintf("%s,cpu=%q,type=%q,kind=%q", ml, cpu, typeName, kind), agg.Last)
				}
			}
		}
	}

	s.mu.RLock()
	names := make([]string, 0, len(s.machines))
	for name := range s.machines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.machines[name]
		ml := fmt.Sprintf("machine=%q", name)
		ticks.add(ml, float64(e.col.Ticks()))
		runs.add(ml, float64(e.col.Runs()))
		ingest.add(ml, e.col.IngestSec())
		ovhTick.add(ml, e.col.OverheadPerTickSec())
		ovhRatio.add(ml, e.col.OverheadRatio())
		if rec := e.recorder(); rec != nil {
			st := rec.Stats()
			spEmit.add(ml, float64(st.Emitted))
			spKeep.add(ml, float64(st.Retained))
			spDrop.add(ml, float64(st.Dropped))
		}
		if col := e.profiler(); col != nil {
			pfEmit.add(ml, float64(col.EmittedTotal()))
			pfLost.add(ml, float64(col.LostTotal()))
		}
	}
	s.mu.RUnlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, f := range []*metricFamily{freq, temp, pwr, wall, energy, ctr, degr, ticks, runs, ingest, ovhTick, ovhRatio, spEmit, spKeep, spDrop, pfEmit, pfLost} {
		if len(f.lines) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, line := range f.lines {
			fmt.Fprintln(w, line)
		}
	}
	// The serving path's own families (hetpapid_http_*).
	s.obs.WritePrometheus(w)
}
