package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"hetpapi/internal/stats"
)

// FleetQueryRequest selects a population-wide aggregate view: one
// downsampled rung (raw is rejected — population queries must never
// touch raw rings), an optional time window, and optional filters on
// core type, event kind, machine-id prefix and fleet template.
type FleetQueryRequest struct {
	Rung     Rung
	FromSec  float64 // negative = open
	ToSec    float64 // negative = open
	Type     string  // filter: core type ("P-core", "machine", "degradation", ...)
	Kind     string  // filter: event kind ("instructions", "power_w", ...)
	Template string  // filter: fleet template tag (via Store.SetMeta)
	Machine  string  // filter: machine-id prefix
	Timeline bool    // include the merged per-bucket timeline per group
}

// FleetGroup is the aggregate of one (core type, event kind) pair across
// every matching machine in the window.
type FleetGroup struct {
	Type     string `json:"type"`
	Kind     string `json:"kind"`
	Machines int    `json:"machines"`
	Series   int    `json:"series"`
	// Buckets is the number of rung buckets merged; Samples the raw
	// samples those buckets ingested.
	Buckets int64 `json:"buckets"`
	Samples int64 `json:"samples"`
	// Merged is the exact merge of every window bucket: total sample
	// mass and the population-wide envelope.
	Merged stats.Bucket `json:"merged"`
	// Mean/Stddev/P50/P95/P99 describe the distribution of per-bucket
	// means — how the signal varies across machines and across time
	// within the window.
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	// LastSum is the sum over member series of their freshest window
	// value — for cumulative counters, the fleet-wide total.
	LastSum float64 `json:"last_sum"`
	// Timeline, when requested, is the bucket-mean time series merged
	// across all member series (one point per distinct bucket start).
	Timeline []Point `json:"timeline,omitempty"`
}

// FleetQueryResponse is the population aggregate over one rung/window.
type FleetQueryResponse struct {
	Rung     string       `json:"rung"`
	FromSec  float64      `json:"from_sec"`
	ToSec    float64      `json:"to_sec"`
	Machines int          `json:"machines"`
	Groups   []FleetGroup `json:"groups"`
}

// seriesWindow is one series' contribution: its key plus the window
// buckets copied out under the shard read lock.
type seriesWindow struct {
	key      Key
	typeName string
	kind     string
	buckets  []RungPoint
}

// FleetQuery aggregates the selected rung across the whole population.
//
// The first pass walks the shards under their read locks and copies out
// only the rung buckets inside the window — bounded by RungCapacity per
// series, never the raw rings. The second pass sorts contributions by
// series key and folds them in that order, so every floating-point
// accumulation happens in a deterministic sequence: the response is
// byte-identical no matter how many goroutines wrote the data or how
// the shard maps iterate.
func (st *Store) FleetQuery(req FleetQueryRequest) (FleetQueryResponse, error) {
	if req.Rung <= RungRaw || req.Rung >= numRungs {
		return FleetQueryResponse{}, fmt.Errorf("fleet query needs a downsampled rung (1s, 10s or 1m), got %q", req.Rung)
	}
	var wins []seriesWindow
	for _, sh := range st.shards {
		sh.mu.RLock()
		for k, s := range sh.series {
			typeName, kind, ok := parseEventSeries(k.Series)
			if !ok {
				continue
			}
			if req.Type != "" && typeName != req.Type {
				continue
			}
			if req.Kind != "" && kind != req.Kind {
				continue
			}
			if req.Machine != "" && !strings.HasPrefix(k.Machine, req.Machine) {
				continue
			}
			buckets := s.rungs[req.Rung-1].appendWindow(req.FromSec, req.ToSec, nil)
			if len(buckets) == 0 {
				continue
			}
			wins = append(wins, seriesWindow{key: k, typeName: typeName, kind: kind, buckets: buckets})
		}
		sh.mu.RUnlock()
	}
	if req.Template != "" {
		filtered := wins[:0]
		for _, w := range wins {
			if st.Meta(w.key.Machine).Template == req.Template {
				filtered = append(filtered, w)
			}
		}
		wins = filtered
	}
	sort.Slice(wins, func(i, j int) bool {
		a, b := wins[i], wins[j]
		if a.typeName != b.typeName {
			return a.typeName < b.typeName
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.key.Machine != b.key.Machine {
			return a.key.Machine < b.key.Machine
		}
		return a.key.Series < b.key.Series
	})

	resp := FleetQueryResponse{Rung: req.Rung.String(), FromSec: req.FromSec, ToSec: req.ToSec}
	allMachines := map[string]bool{}
	for i := 0; i < len(wins); {
		j := i
		for j < len(wins) && wins[j].typeName == wins[i].typeName && wins[j].kind == wins[i].kind {
			j++
		}
		g := FleetGroup{Type: wins[i].typeName, Kind: wins[i].kind}
		var w stats.Welford
		var means []float64
		machines := map[string]bool{}
		timeline := map[float64]*stats.Bucket{}
		var times []float64
		for _, sw := range wins[i:j] {
			g.Series++
			machines[sw.key.Machine] = true
			allMachines[sw.key.Machine] = true
			for _, bp := range sw.buckets {
				g.Buckets++
				g.Samples += bp.Agg.N
				g.Merged.Merge(bp.Agg)
				m := bp.Agg.Mean()
				w.Add(m)
				means = append(means, m)
				if req.Timeline {
					tb := timeline[bp.TimeSec]
					if tb == nil {
						tb = &stats.Bucket{}
						timeline[bp.TimeSec] = tb
						times = append(times, bp.TimeSec)
					}
					tb.Merge(bp.Agg)
				}
			}
			g.LastSum += sw.buckets[len(sw.buckets)-1].Agg.Last
		}
		g.Machines = len(machines)
		g.Mean = w.Mean()
		g.Stddev = w.Stddev()
		g.P50 = stats.Percentile(means, 50)
		g.P95 = stats.Percentile(means, 95)
		g.P99 = stats.Percentile(means, 99)
		if req.Timeline {
			sort.Float64s(times)
			g.Timeline = make([]Point, 0, len(times))
			for _, t := range times {
				g.Timeline = append(g.Timeline, Point{TimeSec: t, Value: timeline[t].Mean()})
			}
		}
		resp.Groups = append(resp.Groups, g)
		i = j
	}
	resp.Machines = len(allMachines)
	return resp, nil
}

// RungSummary merges every window bucket of one series' rung into a
// single aggregate — the per-machine feature the anomaly detector
// scores. The bool reports whether the series exists and had any
// bucket in the window.
func (st *Store) RungSummary(k Key, r Rung, fromSec, toSec float64) (stats.Bucket, bool) {
	pts, ok := st.RungRange(k, r, fromSec, toSec)
	if !ok || len(pts) == 0 {
		return stats.Bucket{}, false
	}
	var b stats.Bucket
	for _, p := range pts {
		b.Merge(p.Agg)
	}
	return b, true
}
