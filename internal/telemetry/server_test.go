package telemetry_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetpapi/internal/fleet"
	"hetpapi/internal/profile"
	"hetpapi/internal/scenario"
	"hetpapi/internal/telemetry"
	"hetpapi/internal/telemetry/client"
	"hetpapi/internal/validate"
)

// seededServer builds a store with known contents and a server with one
// registered machine.
func seededServer(t *testing.T, timeout time.Duration) (*telemetry.Store, *telemetry.Server) {
	t.Helper()
	st := telemetry.NewStore(telemetry.Config{Capacity: 64})
	for i := 0; i < 10; i++ {
		ti := float64(i)
		st.Append(telemetry.Key{Machine: "mach", Series: "power_w"}, ti, 40+ti)
		st.Append(telemetry.Key{Machine: "mach", Series: telemetry.CounterSeriesName(0, "P-core", "instructions")}, ti, 1000*ti)
		st.Append(telemetry.Key{Machine: "mach", Series: telemetry.CounterSeriesName(1, "E-core", "instructions")}, ti, 100*ti)
	}
	srv := telemetry.NewServer(st, timeout)
	srv.Register("mach", "seed-scenario", "homogeneous", telemetry.NewCollector(st, "mach", 1))
	return st, srv
}

func TestHandlersTable(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		path       string
		wantStatus int
		check      func(t *testing.T, body []byte)
	}{
		{"health ok", "/health", 200, func(t *testing.T, body []byte) {
			var h telemetry.HealthInfo
			if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" || h.Series != 3 {
				t.Fatalf("health = %s (err %v)", body, err)
			}
		}},
		{"machines ok", "/machines", 200, func(t *testing.T, body []byte) {
			var ms []telemetry.MachineInfo
			if err := json.Unmarshal(body, &ms); err != nil || len(ms) != 1 {
				t.Fatalf("machines = %s (err %v)", body, err)
			}
			if ms[0].Name != "mach" || ms[0].Scenario != "seed-scenario" || ms[0].Model != "homogeneous" {
				t.Fatalf("machine entry %+v", ms[0])
			}
		}},
		{"series missing machine", "/series", 400, nil},
		{"series unknown machine", "/series?machine=nope", 404, nil},
		{"series ok", "/series?machine=mach", 200, func(t *testing.T, body []byte) {
			var ss []telemetry.SeriesInfo
			if err := json.Unmarshal(body, &ss); err != nil || len(ss) != 3 {
				t.Fatalf("series = %s (err %v)", body, err)
			}
			if ss[len(ss)-1].Name != "power_w" || ss[len(ss)-1].Agg.Count != 10 {
				t.Fatalf("series entries %+v", ss)
			}
		}},
		{"query missing machine", "/query", 400, nil},
		{"query unknown machine", "/query?machine=nope&series=power_w", 404, nil},
		{"query no series or kind", "/query?machine=mach", 400, nil},
		{"query series and kind", "/query?machine=mach&series=power_w&kind=instructions", 400, nil},
		{"query malformed from", "/query?machine=mach&series=power_w&from=abc", 400, nil},
		{"query malformed to", "/query?machine=mach&series=power_w&to=1e", 400, nil},
		{"query bad grouping", "/query?machine=mach&kind=instructions&by=cpu", 400, nil},
		{"query unknown series", "/query?machine=mach&series=nope", 404, nil},
		{"query empty range", "/query?machine=mach&series=power_w&from=100&to=200", 200, func(t *testing.T, body []byte) {
			var q telemetry.QueryResponse
			if err := json.Unmarshal(body, &q); err != nil || len(q.Points) != 0 {
				t.Fatalf("empty range = %s (err %v)", body, err)
			}
		}},
		{"query range slice", "/query?machine=mach&series=power_w&from=2&to=4", 200, func(t *testing.T, body []byte) {
			var q telemetry.QueryResponse
			if err := json.Unmarshal(body, &q); err != nil || len(q.Points) != 3 {
				t.Fatalf("range = %s (err %v)", body, err)
			}
			if q.Points[0].Value != 42 || q.Points[2].Value != 44 {
				t.Fatalf("range points %+v", q.Points)
			}
		}},
		{"query with aggregate", "/query?machine=mach&series=power_w&agg=1", 200, func(t *testing.T, body []byte) {
			var q telemetry.QueryResponse
			if err := json.Unmarshal(body, &q); err != nil || q.Aggregate == nil {
				t.Fatalf("agg query = %s (err %v)", body, err)
			}
			if q.Aggregate.Count != 10 || q.Aggregate.Min != 40 || q.Aggregate.Max != 49 {
				t.Fatalf("aggregate %+v", q.Aggregate)
			}
		}},
		{"query by type", "/query?machine=mach&kind=instructions&by=type", 200, func(t *testing.T, body []byte) {
			var q telemetry.QueryResponse
			if err := json.Unmarshal(body, &q); err != nil || len(q.Groups) != 2 {
				t.Fatalf("by-type = %s (err %v)", body, err)
			}
			if q.Groups[0].Type != "E-core" || q.Groups[1].Type != "P-core" {
				t.Fatalf("groups %+v", q.Groups)
			}
			if q.Groups[1].LastSum != 9000 {
				t.Fatalf("P-core LastSum = %g", q.Groups[1].LastSum)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if resp.StatusCode != 200 {
				var e telemetry.APIError
				if err := json.Unmarshal(body, &e); err != nil || e.Status != tc.wantStatus || e.Error == "" {
					t.Fatalf("error body %s not a valid APIError (err %v)", body, err)
				}
			}
			if tc.check != nil {
				tc.check(t, body)
			}
		})
	}
}

// TestDegradationsEndpoint seeds measure/* and degradation/* series for
// one of two machines and checks /degradations reports only the probed
// machine, with latest tallies and per-event readings, and that the
// tallies surface in /metrics as hetpapi_degradation_total.
func TestDegradationsEndpoint(t *testing.T) {
	st := telemetry.NewStore(telemetry.Config{Capacity: 64})
	for i := 0; i < 5; i++ {
		ti := float64(i)
		st.Append(telemetry.Key{Machine: "plain", Series: "power_w"}, ti, 40+ti)
		st.Append(telemetry.Key{Machine: "probed", Series: "power_w"}, ti, 50+ti)
		st.Append(telemetry.Key{Machine: "probed",
			Series: telemetry.MeasureSeriesName("PAPI_TOT_INS", "final")}, ti, 1000*ti)
		st.Append(telemetry.Key{Machine: "probed",
			Series: telemetry.MeasureSeriesName("PAPI_TOT_INS", "error_bound")}, ti, 10*ti)
		st.Append(telemetry.Key{Machine: "probed",
			Series: telemetry.DegradationSeriesName("busy_retries")}, ti, ti)
	}
	srv := telemetry.NewServer(st, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	code, body := get("/degradations")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var infos []telemetry.DegradationInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	if len(infos) != 1 || infos[0].Machine != "probed" {
		t.Fatalf("want only the probed machine, got %+v", infos)
	}
	if infos[0].Counters["busy_retries"] != 4 {
		t.Errorf("busy_retries = %g, want latest value 4", infos[0].Counters["busy_retries"])
	}
	if len(infos[0].Events) != 1 || infos[0].Events[0].Event != "PAPI_TOT_INS" ||
		infos[0].Events[0].Final != 4000 || infos[0].Events[0].ErrorBound != 40 {
		t.Errorf("events %+v", infos[0].Events)
	}

	if code, body := get("/degradations?machine=probed"); code != 200 {
		t.Fatalf("machine filter status %d: %s", code, body)
	}
	if code, _ := get("/degradations?machine=plain"); code != 200 {
		t.Fatalf("unprobed machine filter must still be 200 (empty list), got %d", code)
	}
	if code, _ := get("/degradations?machine=nope"); code != 404 {
		t.Fatalf("unknown machine must 404, got %d", code)
	}

	_, metrics := get("/metrics")
	if !strings.Contains(string(metrics),
		`hetpapi_degradation_total{machine="probed",action="busy_retries"} 4`) {
		t.Errorf("metrics missing degradation family:\n%s", metrics)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE hetpapi_pkg_power_watts gauge",
		`hetpapi_pkg_power_watts{machine="mach"} 49`,
		`hetpapi_counter_total{machine="mach",cpu="0",type="P-core",kind="instructions"} 9000`,
		"# TYPE hetpapid_ticks_total counter",
		`hetpapid_overhead_ratio{machine="mach"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestClientRoundTrip drives every client method against the server.
func TestClientRoundTrip(t *testing.T) {
	_, srv := seededServer(t, time.Second)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health %+v err %v", h, err)
	}
	if ms, err := c.Machines(ctx); err != nil || len(ms) != 1 {
		t.Fatalf("machines %+v err %v", ms, err)
	}
	if ss, err := c.Series(ctx, "mach"); err != nil || len(ss) != 3 {
		t.Fatalf("series %+v err %v", ss, err)
	}
	q, err := c.Query(ctx, telemetry.QueryRequest{Machine: "mach", Series: "power_w", Agg: true})
	if err != nil || len(q.Points) != 10 || q.Aggregate == nil {
		t.Fatalf("query %+v err %v", q, err)
	}
	if _, err := c.Query(ctx, telemetry.QueryRequest{Machine: "ghost", Series: "power_w"}); err == nil {
		t.Fatal("unknown machine must error")
	} else if !strings.Contains(err.Error(), "404") {
		t.Fatalf("error %v does not surface the status", err)
	}
}

// TestRequestTimeout checks the per-request timeout wrapper returns 503
// once the deadline passes.
func TestRequestTimeout(t *testing.T) {
	_, srv := seededServer(t, time.Nanosecond)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sawTimeout := false
	for i := 0; i < 20 && !sawTimeout; i++ {
		resp, err := http.Get(ts.URL + "/health")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		sawTimeout = resp.StatusCode == http.StatusServiceUnavailable
	}
	if !sawTimeout {
		t.Fatal("1ns request timeout never produced a 503")
	}
}

// TestShutdownMidRequest drains a real HTTP server while /query traffic
// is in flight: requests either succeed or fail cleanly, and Shutdown
// returns.
func TestShutdownMidRequest(t *testing.T) {
	st, srv := seededServer(t, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Append(telemetry.Key{Machine: "mach", Series: "power_w"}, 0, 1)
				resp, err := http.Get(base + "/query?machine=mach&series=power_w")
				if err != nil {
					return // connection refused after shutdown: expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let requests flow
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	if _, err := http.Get(base + "/health"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

// TestConcurrentWritersAndQueryReaders is the HTTP-level race check:
// collector-style writers append while /query and /metrics readers pull,
// all under -race in CI.
func TestConcurrentWritersAndQueryReaders(t *testing.T) {
	st, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st.Append(telemetry.Key{Machine: "mach", Series: "power_w"}, float64(i), float64(i))
				st.Append(telemetry.Key{Machine: "mach", Series: fmt.Sprintf("cpu%d/P-core/cycles", w)}, float64(i), float64(i))
			}
		}(w)
	}
	c := client.New(ts.URL)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 50; i++ {
				if _, err := c.Query(ctx, telemetry.QueryRequest{Machine: "mach", Series: "power_w", Agg: true}); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Query(ctx, telemetry.QueryRequest{Machine: "mach", Kind: "cycles", By: "type"}); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Metrics(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestProfileEndpoint covers the /profile handler: parameter validation,
// the no-profiler 404, and a successful fetch that round-trips through
// the pprof decoder.
func TestProfileEndpoint(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, _ := get("/profile"); code != 400 {
		t.Fatalf("missing machine must 400, got %d", code)
	}
	if code, _ := get("/profile?machine=nope"); code != 404 {
		t.Fatalf("unknown machine must 404, got %d", code)
	}
	if code, _ := get("/profile?machine=mach"); code != 404 {
		t.Fatalf("machine without profiler must 404, got %d", code)
	}

	srv.AttachProfiler("mach", profile.NewCollector(nil, profile.Config{}))
	code, body := get("/profile?machine=mach")
	if code != 200 {
		t.Fatalf("profile fetch: status %d", code)
	}
	d, err := profile.DecodePprof(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("served profile does not decode: %v", err)
	}
	if len(d.SampleTypes) != 3 {
		t.Fatalf("served profile sample types: %+v", d.SampleTypes)
	}

	_, metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE hetpapiprof_samples_emitted_total counter",
		`hetpapiprof_samples_emitted_total{machine="mach"} 0`,
		`hetpapiprof_samples_lost_total{machine="mach"} 0`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Detach: the endpoint goes back to 404.
	srv.AttachProfiler("mach", nil)
	if code, _ := get("/profile?machine=mach"); code != 404 {
		t.Fatalf("detached profiler must 404, got %d", code)
	}
}

// TestFleetEndpoint: the fleet monitor's mounted /fleet 404s before any
// report, reports the in-flight flag while a run is hot, then serves
// the published roll-up — compact by default, per-machine results with
// results=1.
func TestFleetEndpoint(t *testing.T) {
	_, srv := seededServer(t, 0)
	mon := fleet.NewMonitor()
	mon.Register(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, _ := get("/fleet"); code != 404 {
		t.Fatalf("no report must 404, got %d", code)
	}
	mon.SetRunning(true)
	if code, body := get("/fleet"); code != 200 || !strings.Contains(string(body), `"running": true`) {
		t.Fatalf("pending run: status %d body %s", code, body)
	}

	f, err := fleet.Generate(fleet.GenConfig{
		Machines: 3,
		Seed:     11,
		Templates: []fleet.Template{{Name: "spin", Weight: 1, Spec: scenario.Spec{
			Machine: "homogeneous", MaxSeconds: 1, SamplePeriodSec: 0.25,
			Workloads: []scenario.WorkloadSpec{{
				Kind: scenario.WorkloadSpin, CPUs: []int{0}, Seconds: 0.2,
			}},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(context.Background(), f, fleet.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetReport(rep, nil)
	mon.SetRunning(false)

	code, body := get("/fleet")
	if code != 200 {
		t.Fatalf("fleet fetch: status %d", code)
	}
	var info fleet.FleetInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Running || info.Report == nil || info.Report.Machines != 3 ||
		info.Report.Completed != 3 || info.Report.Digest != rep.Digest {
		t.Fatalf("fleet body %s", body)
	}
	if len(info.Report.Results) != 0 {
		t.Fatal("default /fleet response must omit per-machine results")
	}

	_, body = get("/fleet?results=1")
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Report.Results) != 3 {
		t.Fatalf("results=1 returned %d machine results", len(info.Report.Results))
	}
}

func TestValidateEndpoint(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/validate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("no scorecard must 404, got %d", resp.StatusCode)
	}

	src, ok := validate.SourceFor("homogeneous")
	if !ok {
		t.Fatal("homogeneous model missing")
	}
	card, err := validate.BuildScorecard([]validate.ModelSource{src})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetScorecard(card)

	resp, err = http.Get(ts.URL + "/validate")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("scorecard fetch: status %d body %s", resp.StatusCode, body)
	}
	var got validate.Scorecard
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad /validate body: %v", err)
	}
	if got.Digest != card.Digest || got.Summary.Rows != card.Summary.Rows || got.Summary.Failed != 0 {
		t.Fatalf("scorecard mismatch: %+v", got.Summary)
	}
}
