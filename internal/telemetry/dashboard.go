package telemetry

import "net/http"

// handleFleetUI serves the self-contained live fleet dashboard: a
// single HTML page (no external assets, works offline) that polls
// /fleet/query for per-core-type rung aggregates and sparkline
// timelines, /fleet for the roll-up report and flagged outliers,
// /status for the serving path's per-endpoint latency/SLO panel, and
// /series?machine=fleet for the pipeline's own self-overhead gauges
// (shown alongside the serving panel: both measure the monitor
// itself).
func (s *Server) handleFleetUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(fleetDashboardHTML))
}

const fleetDashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>hetpapi fleet dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #0d1117; color: #c9d1d9; margin: 0; padding: 1rem 1.5rem; }
  h1 { font-size: 1.1rem; color: #58a6ff; margin: 0 0 .25rem; }
  h2 { font-size: .95rem; color: #8b949e; margin: 1.25rem 0 .5rem;
       border-bottom: 1px solid #21262d; padding-bottom: .25rem; }
  .muted { color: #8b949e; } .bad { color: #f85149; } .ok { color: #3fb950; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: right; padding: .15rem .6rem; border-bottom: 1px solid #21262d; }
  th { color: #8b949e; font-weight: normal; }
  th:first-child, td:first-child, th:nth-child(2), td:nth-child(2) { text-align: left; }
  canvas.spark { vertical-align: middle; background: #161b22; border-radius: 3px; }
  select, button { background: #21262d; color: #c9d1d9; border: 1px solid #30363d;
                   border-radius: 4px; padding: .15rem .5rem; font: inherit; }
  .gauges { display: flex; gap: 1.5rem; flex-wrap: wrap; }
  .gauge { background: #161b22; border: 1px solid #21262d; border-radius: 6px;
           padding: .5rem .9rem; min-width: 9rem; }
  .gauge .v { font-size: 1.2rem; color: #e6edf3; }
  #err { color: #f85149; margin-top: .5rem; white-space: pre-wrap; }
</style>
</head>
<body>
<h1>hetpapi fleet dashboard</h1>
<div class="muted">rung <select id="rung">
  <option>1s</option><option selected>10s</option><option>1m</option>
</select>
 refresh <select id="refresh">
  <option value="0">off</option><option value="1000">1s</option>
  <option value="2000" selected>2s</option><option value="5000">5s</option>
</select>
 <button id="reload">reload</button>
 <span id="stamp" class="muted"></span></div>
<div id="err"></div>

<h2>fleet roll-up</h2>
<div id="rollup" class="gauges"><span class="muted">waiting for /fleet&hellip;</span></div>

<h2>serving path (per-endpoint latency / SLO)</h2>
<div id="servgauges" class="gauges"><span class="muted">waiting for /status&hellip;</span></div>
<table id="serving"><thead><tr>
  <th>endpoint</th><th>requests</th><th>err%</th><th>p50 ms</th><th>p95 ms</th>
  <th>p99 ms</th><th>max ms</th><th>attain%</th><th>slo</th>
</tr></thead><tbody></tbody></table>
<div id="burns" class="bad"></div>

<h2>self-overhead (pipeline measuring itself)</h2>
<div id="overhead" class="gauges"><span class="muted">no selfoverhead/* series yet</span></div>

<h2>core-type / event breakdown</h2>
<table id="groups"><thead><tr>
  <th>type</th><th>kind</th><th>machines</th><th>series</th><th>buckets</th>
  <th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>min</th><th>max</th>
  <th>last&Sigma;</th><th>trend</th>
</tr></thead><tbody></tbody></table>

<h2>flagged outliers</h2>
<table id="outliers"><thead><tr>
  <th>machine</th><th>template</th><th>metric</th>
  <th>value</th><th>median</th><th>MAD</th><th>score</th>
</tr></thead><tbody></tbody></table>
<div id="nooutliers" class="muted"></div>

<script>
"use strict";
const $ = id => document.getElementById(id);
const fmt = x => {
  if (x === undefined || x === null || Number.isNaN(x)) return "-";
  const a = Math.abs(x);
  if (a !== 0 && (a >= 1e6 || a < 1e-3)) return x.toExponential(2);
  return x.toLocaleString("en-US", {maximumFractionDigits: 3});
};

function spark(canvas, pts) {
  const ctx = canvas.getContext("2d"), W = canvas.width, H = canvas.height;
  ctx.clearRect(0, 0, W, H);
  if (!pts || pts.length < 2) return;
  let lo = Infinity, hi = -Infinity;
  for (const p of pts) { if (p.v < lo) lo = p.v; if (p.v > hi) hi = p.v; }
  const span = (hi - lo) || 1;
  ctx.strokeStyle = "#58a6ff"; ctx.lineWidth = 1.25; ctx.beginPath();
  const t0 = pts[0].t, t1 = pts[pts.length - 1].t, ts = (t1 - t0) || 1;
  pts.forEach((p, i) => {
    const x = 2 + (W - 4) * (p.t - t0) / ts;
    const y = H - 2 - (H - 4) * (p.v - lo) / span;
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}

function gauge(label, value, cls) {
  return '<div class="gauge"><div class="muted">' + label +
         '</div><div class="v ' + (cls || "") + '">' + value + "</div></div>";
}

async function fetchJSON(url) {
  const resp = await fetch(url);
  const body = await resp.json();
  if (!resp.ok) throw new Error(url + ": " + (body.error || resp.status));
  return body;
}

async function refresh() {
  $("err").textContent = "";
  const rung = $("rung").value;
  try {
    const q = await fetchJSON("/fleet/query?rung=" + rung + "&timeline=1");
    const tb = $("groups").tBodies[0];
    tb.innerHTML = "";
    for (const g of (q.groups || [])) {
      const tr = tb.insertRow();
      const cells = [g.type, g.kind, g.machines, g.series, g.buckets,
        fmt(g.mean), fmt(g.p50), fmt(g.p95), fmt(g.p99),
        fmt(g.merged.min), fmt(g.merged.max), fmt(g.last_sum)];
      for (const c of cells) tr.insertCell().textContent = c;
      const cv = document.createElement("canvas");
      cv.className = "spark"; cv.width = 120; cv.height = 24;
      tr.insertCell().appendChild(cv);
      spark(cv, g.timeline);
    }
    $("stamp").textContent = "· " + (q.machines || 0) + " machines · " +
      new Date().toLocaleTimeString();
  } catch (e) { $("err").textContent += e + "\n"; }

  try {
    const f = await fetchJSON("/fleet");
    const r = f.report, roll = $("rollup");
    if (r) {
      roll.innerHTML =
        gauge("machines", r.machines) +
        gauge("completed", r.completed, r.completed === r.machines ? "ok" : "") +
        gauge("incidents", (r.incidents || []).length,
              (r.incidents || []).length ? "bad" : "ok") +
        gauge("anomalies", (r.anomalies || []).length,
              (r.anomalies || []).length ? "bad" : "ok") +
        gauge("energy J", fmt(r.energy_j)) +
        gauge("digest", r.digest ? r.digest.slice(0, 12) : "-");
      const ob = $("outliers").tBodies[0];
      ob.innerHTML = "";
      for (const a of (r.anomalies || [])) {
        const tr = ob.insertRow();
        for (const c of [a.machine, a.template, a.metric,
          fmt(a.value), fmt(a.median), fmt(a.mad), fmt(a.score)])
          tr.insertCell().textContent = c;
      }
      $("nooutliers").textContent =
        (r.anomalies || []).length ? "" : "no machines flagged";
    } else if (f.running) {
      roll.innerHTML = gauge("fleet run", "in flight…");
    }
  } catch (e) { /* /fleet is 404 until the first run lands; not an error */ }

  try {
    const st = await fetchJSON("/status");
    $("servgauges").innerHTML =
      gauge("requests", fmt(st.requests)) +
      gauge("in flight", fmt(st.in_flight)) +
      gauge("errors", fmt(st.errors), st.errors ? "bad" : "ok") +
      gauge("slo latency", fmt(st.slo_latency_ms) + " ms") +
      gauge("burns", (st.burns || []).length,
            (st.burns || []).length ? "bad" : "ok") +
      gauge("slow ring", (st.slow_requests || []).length);
    const sb = $("serving").tBodies[0];
    sb.innerHTML = "";
    for (const e of (st.endpoints || [])) {
      const tr = sb.insertRow();
      for (const c of [e.endpoint, e.requests, fmt(e.error_pct),
        fmt(e.p50_ms), fmt(e.p95_ms), fmt(e.p99_ms), fmt(e.max_ms),
        fmt(e.slo.latency_attain_pct)])
        tr.insertCell().textContent = c;
      const cell = tr.insertCell();
      cell.textContent = e.slo.ok ? "ok" : "burn";
      cell.className = e.slo.ok ? "ok" : "bad";
    }
    $("burns").textContent = (st.burns || [])
      .map(b => b.endpoint + " [" + b.kind + "] " + b.detail).join("\n");
  } catch (e) { $("err").textContent += e + "\n"; }

  try {
    const series = await fetchJSON("/series?machine=fleet");
    const oh = {};
    for (const s of series)
      if (s.name.startsWith("selfoverhead/"))
        oh[s.name.slice("selfoverhead/".length)] = s.agg.last;
    if (Object.keys(oh).length) {
      $("overhead").innerHTML =
        gauge("points ingested", fmt(oh.points)) +
        gauge("samples", fmt(oh.samples)) +
        gauge("ingest ms", fmt(oh.ingest_ms)) +
        gauge("ns / point", fmt(oh.ns_per_point)) +
        gauge("points / s", fmt(oh.points_per_s)) +
        gauge("rejected", fmt(oh.rejected), oh.rejected ? "bad" : "ok");
    }
  } catch (e) { /* no fleet machine yet */ }
}

let timer = null;
function arm() {
  if (timer) clearInterval(timer);
  const ms = parseInt($("refresh").value, 10);
  if (ms > 0) timer = setInterval(refresh, ms);
}
$("rung").addEventListener("change", refresh);
$("refresh").addEventListener("change", arm);
$("reload").addEventListener("click", refresh);
refresh(); arm();
</script>
</body>
</html>
`
