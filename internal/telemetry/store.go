// Package telemetry is the live-monitoring layer over the simulated
// machines: a sharded, concurrency-safe time-series store that ingests
// per-tick samples from scenario step hooks (one series per core, event
// and PMU, plus machine-level power, energy, frequency and temperature),
// holds them in fixed-capacity ring buffers with multi-resolution
// downsampling rungs, and answers snapshot/range/aggregate queries
// without blocking ingestion.
//
// Layout: series are partitioned across shards by an FNV-1a hash of their
// key, so concurrent collectors (one goroutine per simulated machine)
// contend only when they hash to the same shard. The write path takes one
// shard's write lock for O(1) work per sample; the read path takes the
// shard's read lock only long enough to copy points out ("copy-on-read"),
// so queries never hold a lock while marshalling or aggregating. Rings
// grow lazily up to their configured capacity, so a fleet of thousands of
// short-lived machines pays for the points it stores, not for the
// capacity it reserves.
//
// Aggregates are streaming: every series maintains a Welford
// mean/variance over its whole lifetime and a RingQuantile window for
// p50/p95/p99 (internal/stats), so aggregate queries are O(1) lookups —
// no re-sorting of the series on query, the cost model Diamond et al.'s
// RAPL-overhead study demands of a collector that must account for its
// own sampling cost.
//
// Downsampling rungs: alongside the raw ring, every series maintains one
// ring of mergeable bucket aggregates (stats.Bucket) per rung resolution
// (1s/10s/1m of simulated time), folded at ingest. A query over any rung
// walks at most RungCapacity buckets, and a population-wide query (the
// /fleet/query endpoint) merges closed buckets across thousands of
// machines without ever touching a raw ring.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hetpapi/internal/stats"
)

// Key addresses one series: a machine id (the daemon uses the scenario
// name) and a series name ("cpu0_mhz", "power_w", "cpu3/P-core/cycles").
type Key struct {
	Machine string
	Series  string
}

func (k Key) String() string { return k.Machine + "/" + k.Series }

// Config sizes the store.
type Config struct {
	// Capacity is the per-series raw ring capacity in stored points
	// (default 4096). The percentile window has the same size.
	Capacity int
	// Downsample is the number of raw samples averaged into one stored
	// point (default 1 = store raw). Streaming aggregates and the rungs
	// always see the raw values; downsampling only bounds what
	// Snapshot/Range return.
	Downsample int
	// Shards is the number of lock shards (default 8).
	Shards int
	// RungCapacity is the per-series, per-rung ring capacity in closed
	// buckets (default 1024; at the 1s rung that is ~17 simulated
	// minutes of history). Rungs cost nothing until samples arrive:
	// their rings grow lazily like the raw ring.
	RungCapacity int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Downsample <= 0 {
		c.Downsample = 1
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.RungCapacity <= 0 {
		c.RungCapacity = 1024
	}
	return c
}

// ring is a lazily-grown circular buffer: it appends until it reaches
// max, then wraps, overwriting the oldest entry. Memory is proportional
// to the points actually stored, never to the configured capacity.
type ring[T any] struct {
	buf  []T
	max  int
	head int // next overwrite position once len(buf) == max
}

func (r *ring[T]) push(v T) {
	if len(r.buf) < r.max {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % r.max
}

func (r *ring[T]) len() int { return len(r.buf) }

// appendTo appends the ring contents, oldest first, onto dst.
func (r *ring[T]) appendTo(dst []T) []T {
	dst = append(dst, r.buf[r.head:]...)
	return append(dst, r.buf[:r.head]...)
}

// rungState is one resolution's downsampling state: the currently open
// bucket plus the ring of closed ones. Guarded by the shard's mutex.
type rungState struct {
	width float64 // bucket width in seconds
	open  bool
	start float64 // open bucket's aligned start time
	cur   stats.Bucket
	ring  ring[RungPoint]
}

// add folds one sample at time t into the rung, closing the open bucket
// when t crosses into a later one. Timestamps are assumed non-decreasing
// per series (the collector contract); a late sample that lands before
// the open bucket is folded into the open bucket rather than reopening a
// closed one, which keeps the ring time-ordered.
func (rs *rungState) add(t, v float64) {
	bs := math.Floor(t/rs.width) * rs.width
	if !rs.open {
		rs.open = true
		rs.start = bs
	} else if bs > rs.start {
		rs.ring.push(RungPoint{TimeSec: rs.start, Agg: rs.cur})
		rs.cur = stats.Bucket{}
		rs.start = bs
	}
	rs.cur.Add(v)
}

// appendWindow appends the rung's buckets with from <= TimeSec <= to
// (negative bounds are open) onto dst, closed buckets first, then the
// open bucket so live queries see the freshest window.
func (rs *rungState) appendWindow(fromSec, toSec float64, dst []RungPoint) []RungPoint {
	emit := func(p RungPoint) []RungPoint {
		if fromSec >= 0 && p.TimeSec < fromSec {
			return dst
		}
		if toSec >= 0 && p.TimeSec > toSec {
			return dst
		}
		return append(dst, p)
	}
	for _, p := range rs.ring.buf[rs.ring.head:] {
		dst = emit(p)
	}
	for _, p := range rs.ring.buf[:rs.ring.head] {
		dst = emit(p)
	}
	if rs.open {
		dst = emit(RungPoint{TimeSec: rs.start, Agg: rs.cur})
	}
	return dst
}

// series is one ring-buffered signal plus its streaming aggregates and
// downsampling rungs. Guarded by its shard's mutex.
type series struct {
	raw ring[Point]
	agg stats.Welford
	win *stats.RingQuantile

	// rungs holds one downsampling state per non-raw rung, indexed by
	// Rung-1 (Rung1s first).
	rungs [numRungs - 1]rungState

	// Downsample accumulator: accN raw samples pending, summing accSum.
	accN   int
	accSum float64
}

type shard struct {
	mu     sync.RWMutex
	series map[Key]*series
}

// Store is the sharded time-series store.
type Store struct {
	cfg    Config
	shards []*shard

	// rejected counts non-finite samples dropped at the door.
	rejected atomic.Int64

	metaMu sync.RWMutex
	meta   map[string]MachineMeta
}

// MachineMeta tags one machine id with fleet metadata, letting
// population queries group by template without parsing machine ids.
type MachineMeta struct {
	Template string `json:"template,omitempty"`
	Model    string `json:"model,omitempty"`
}

// NewStore builds a store with the given (defaulted) configuration.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	st := &Store{cfg: cfg, shards: make([]*shard, cfg.Shards), meta: map[string]MachineMeta{}}
	for i := range st.shards {
		st.shards[i] = &shard{series: map[Key]*series{}}
	}
	return st
}

// Config returns the effective (defaulted) configuration.
func (st *Store) Config() Config { return st.cfg }

// SetMeta tags a machine id with fleet metadata (template, model).
func (st *Store) SetMeta(machine string, m MachineMeta) {
	st.metaMu.Lock()
	st.meta[machine] = m
	st.metaMu.Unlock()
}

// Meta returns a machine's metadata (zero value when untagged).
func (st *Store) Meta(machine string) MachineMeta {
	st.metaMu.RLock()
	defer st.metaMu.RUnlock()
	return st.meta[machine]
}

// Rejected returns the number of non-finite samples dropped at ingest.
func (st *Store) Rejected() int64 { return st.rejected.Load() }

func (st *Store) shardOf(k Key) *shard {
	h := fnv.New32a()
	h.Write([]byte(k.Machine))
	h.Write([]byte{0})
	h.Write([]byte(k.Series))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

// Append ingests one raw sample into the keyed series, creating it on
// first use. Non-finite values (NaN, ±Inf) are rejected before they can
// reach any ring or accumulator: a NaN would poison the streaming
// aggregates and an Inf would destroy every rung bucket's envelope for
// the rest of its window. Safe for concurrent use with other appends
// and queries.
func (st *Store) Append(k Key, timeSec, value float64) {
	if math.IsNaN(value) || math.IsInf(value, 0) ||
		math.IsNaN(timeSec) || math.IsInf(timeSec, 0) {
		st.rejected.Add(1)
		return
	}
	sh := st.shardOf(k)
	sh.mu.Lock()
	s := sh.series[k]
	if s == nil {
		s = &series{
			raw: ring[Point]{max: st.cfg.Capacity},
			win: stats.NewRingQuantile(st.cfg.Capacity),
		}
		for i := range s.rungs {
			s.rungs[i] = rungState{
				width: Rung(i + 1).Width(),
				ring:  ring[RungPoint]{max: st.cfg.RungCapacity},
			}
		}
		sh.series[k] = s
	}
	s.agg.Add(value)
	s.win.Add(value)
	for i := range s.rungs {
		s.rungs[i].add(timeSec, value)
	}
	s.accSum += value
	s.accN++
	if s.accN >= st.cfg.Downsample {
		s.raw.push(Point{TimeSec: timeSec, Value: s.accSum / float64(s.accN)})
		s.accN, s.accSum = 0, 0
	}
	sh.mu.Unlock()
}

// Len returns the number of stored (post-downsample) points of a series,
// 0 when absent.
func (st *Store) Len(k Key) int {
	sh := st.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s := sh.series[k]; s != nil {
		return s.raw.len()
	}
	return 0
}

// Snapshot returns a copy of every stored point of a series, oldest
// first, and whether the series exists.
func (st *Store) Snapshot(k Key) ([]Point, bool) {
	return st.SnapshotInto(k, nil)
}

// SnapshotInto appends every stored point of a series, oldest first,
// onto dst (which may be a recycled buffer) and reports whether the
// series exists. The returned slice aliases dst's array when capacity
// allows — the pooled read path the /query handler uses to avoid a
// fresh allocation per request.
func (st *Store) SnapshotInto(k Key, dst []Point) ([]Point, bool) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	if s == nil {
		sh.mu.RUnlock()
		return dst, false
	}
	dst = s.raw.appendTo(dst)
	sh.mu.RUnlock()
	return dst, true
}

// Range returns the stored points with FromSec <= TimeSec <= ToSec. A
// negative bound is open. The bool reports series existence (an empty
// range on an existing series is ([], true)).
func (st *Store) Range(k Key, fromSec, toSec float64) ([]Point, bool) {
	return st.RangeInto(k, fromSec, toSec, nil)
}

// RangeInto is Range appending into a caller-supplied (possibly
// recycled) buffer, like SnapshotInto.
func (st *Store) RangeInto(k Key, fromSec, toSec float64, dst []Point) ([]Point, bool) {
	base := len(dst)
	dst, ok := st.SnapshotInto(k, dst)
	if !ok {
		return dst, false
	}
	out := dst[base:base]
	for _, p := range dst[base:] {
		if fromSec >= 0 && p.TimeSec < fromSec {
			continue
		}
		if toSec >= 0 && p.TimeSec > toSec {
			continue
		}
		out = append(out, p)
	}
	return dst[:base+len(out)], true
}

// RungRange returns the rung's bucket aggregates with
// from <= bucket start <= to (negative bounds open), oldest first,
// including the still-open bucket, and whether the series exists.
// RungRaw falls back to the raw ring, wrapping each stored point in a
// single-sample bucket, so callers can treat every resolution
// uniformly.
func (st *Store) RungRange(k Key, r Rung, fromSec, toSec float64) ([]RungPoint, bool) {
	return st.RungRangeInto(k, r, fromSec, toSec, nil)
}

// RungRangeInto is RungRange appending into a caller-supplied buffer.
func (st *Store) RungRangeInto(k Key, r Rung, fromSec, toSec float64, dst []RungPoint) ([]RungPoint, bool) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	if s == nil {
		sh.mu.RUnlock()
		return dst, false
	}
	if r == RungRaw {
		emit := func(p Point) {
			if fromSec >= 0 && p.TimeSec < fromSec {
				return
			}
			if toSec >= 0 && p.TimeSec > toSec {
				return
			}
			dst = append(dst, RungPoint{TimeSec: p.TimeSec,
				Agg: stats.Bucket{N: 1, Sum: p.Value, Min: p.Value, Max: p.Value, Last: p.Value}})
		}
		for _, p := range s.raw.buf[s.raw.head:] {
			emit(p)
		}
		for _, p := range s.raw.buf[:s.raw.head] {
			emit(p)
		}
	} else {
		dst = s.rungs[r-1].appendWindow(fromSec, toSec, dst)
	}
	sh.mu.RUnlock()
	return dst, true
}

// Aggregate returns the streaming aggregate of a series: lifetime
// count/sum/mean/stddev/min/max/last from the Welford accumulator and
// windowed p50/p95/p99 over the last Capacity raw samples.
func (st *Store) Aggregate(k Key) (Aggregate, bool) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return Aggregate{}, false
	}
	return aggregateOf(&s.agg, s.win), true
}

func aggregateOf(w *stats.Welford, win *stats.RingQuantile) Aggregate {
	return Aggregate{
		Count:  w.N(),
		Sum:    w.Sum(),
		Mean:   w.Mean(),
		Stddev: w.Stddev(),
		Min:    w.Min(),
		Max:    w.Max(),
		Last:   w.Last(),
		P50:    win.Quantile(50),
		P95:    win.Quantile(95),
		P99:    win.Quantile(99),
	}
}

// Keys returns every series key, sorted by machine then series name.
func (st *Store) Keys() []Key {
	var out []Key
	for _, sh := range st.shards {
		sh.mu.RLock()
		for k := range sh.series {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Machine != out[j].Machine {
			return out[i].Machine < out[j].Machine
		}
		return out[i].Series < out[j].Series
	})
	return out
}

// Machines returns the distinct machine ids present, sorted.
func (st *Store) Machines() []string {
	seen := map[string]bool{}
	for _, k := range st.Keys() {
		seen[k.Machine] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// SeriesOf returns the sorted series names of one machine.
func (st *Store) SeriesOf(machine string) []string {
	var out []string
	for _, k := range st.Keys() {
		if k.Machine == machine {
			out = append(out, k.Series)
		}
	}
	return out
}

// NumSeries returns the total series count.
func (st *Store) NumSeries() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// CounterSeriesName is the naming convention for per-core counter series:
// cpu<N>/<core-type>/<kind>, e.g. "cpu3/P-core/instructions".
func CounterSeriesName(cpu int, typeName, kind string) string {
	return fmt.Sprintf("cpu%d/%s/%s", cpu, typeName, kind)
}

// TypeSeriesName is the naming convention for per-core-type counter
// totals (the fleet streamer's form): type/<core-type>/<kind>, e.g.
// "type/P-core/instructions".
func TypeSeriesName(typeName, kind string) string {
	return "type/" + typeName + "/" + kind
}

// MeasureSeriesName is the naming convention for the PAPI-probe value
// series of a fault scenario: measure/<event>/<field>, e.g.
// "measure/PAPI_TOT_CYC/final".
func MeasureSeriesName(event, field string) string {
	return fmt.Sprintf("measure/%s/%s", event, field)
}

// DegradationSeriesName is the naming convention for the probe's
// degradation tallies, e.g. "degradation/busy_retries".
func DegradationSeriesName(counter string) string {
	return "degradation/" + counter
}

// parseCounterSeries splits a counter series name into its parts.
func parseCounterSeries(name string) (cpu, typeName, kind string, ok bool) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "cpu") {
		return "", "", "", false
	}
	return strings.TrimPrefix(parts[0], "cpu"), parts[1], parts[2], true
}

// parseEventSeries classifies a series name for population grouping:
// per-CPU counters (cpu<N>/<type>/<kind>) and per-type totals
// (type/<type>/<kind>) map to their core type and event kind; the
// machine-level scalars map to the pseudo-type "machine"; degradation
// tallies map to the pseudo-type "degradation". Everything else is not
// part of the population view.
func parseEventSeries(name string) (typeName, kind string, ok bool) {
	if _, tn, kd, isCounter := parseCounterSeries(name); isCounter {
		return tn, kd, true
	}
	if rest, isType := strings.CutPrefix(name, "type/"); isType {
		if i := strings.IndexByte(rest, '/'); i > 0 && i < len(rest)-1 {
			return rest[:i], rest[i+1:], true
		}
		return "", "", false
	}
	switch name {
	case "power_w", "energy_j", "temp_c", "wall_w":
		return "machine", name, true
	}
	if counter, isDegr := strings.CutPrefix(name, "degradation/"); isDegr {
		return "degradation", counter, true
	}
	return "", "", false
}

// TypeAggregates groups one machine's counter series of the given kind
// ("instructions", "cycles", "llc-refs", "llc-misses") by core type and
// returns one merged aggregate per type: Welford accumulators are merged
// exactly (the per-core-type mean/stddev of the per-sample values),
// LastSum is the sum of each member's last value (the system-wide per-type
// counter total, since the series carry cumulative counts), and
// percentiles are computed over the members' combined recent windows.
func (st *Store) TypeAggregates(machine, kind string) []TypeAggregate {
	type group struct {
		n       int
		w       stats.Welford
		window  []float64
		lastSum float64
	}
	groups := map[string]*group{}
	for _, sh := range st.shards {
		sh.mu.RLock()
		for k, s := range sh.series {
			if k.Machine != machine {
				continue
			}
			_, typeName, kd, ok := parseCounterSeries(k.Series)
			if !ok || kd != kind {
				continue
			}
			g := groups[typeName]
			if g == nil {
				g = &group{}
				groups[typeName] = g
			}
			g.n++
			g.w.Merge(s.agg)
			g.window = append(g.window, s.win.Window()...)
			g.lastSum += s.agg.Last()
		}
		sh.mu.RUnlock()
	}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TypeAggregate, 0, len(names))
	for _, name := range names {
		g := groups[name]
		agg := Aggregate{
			Count:  g.w.N(),
			Sum:    g.w.Sum(),
			Mean:   g.w.Mean(),
			Stddev: g.w.Stddev(),
			Min:    g.w.Min(),
			Max:    g.w.Max(),
			Last:   g.w.Last(),
			P50:    stats.Percentile(g.window, 50),
			P95:    stats.Percentile(g.window, 95),
			P99:    stats.Percentile(g.window, 99),
		}
		out = append(out, TypeAggregate{Type: name, Series: g.n, LastSum: g.lastSum, Agg: agg})
	}
	return out
}
