// Package telemetry is the live-monitoring layer over the simulated
// machines: a sharded, concurrency-safe time-series store that ingests
// per-tick samples from scenario step hooks (one series per core, event
// and PMU, plus machine-level power, energy, frequency and temperature),
// holds them in fixed-capacity ring buffers with configurable
// downsampling, and answers snapshot/range/aggregate queries without
// blocking ingestion.
//
// Layout: series are partitioned across shards by an FNV-1a hash of their
// key, so concurrent collectors (one goroutine per simulated machine)
// contend only when they hash to the same shard. The write path takes one
// shard's write lock for O(1) work per sample; the read path takes the
// shard's read lock only long enough to copy points out ("copy-on-read"),
// so queries never hold a lock while marshalling or aggregating.
//
// Aggregates are streaming: every series maintains a Welford
// mean/variance over its whole lifetime and a RingQuantile window for
// p50/p95/p99 (internal/stats), so aggregate queries are O(1) lookups —
// no re-sorting of the series on query, the cost model Diamond et al.'s
// RAPL-overhead study demands of a collector that must account for its
// own sampling cost.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"hetpapi/internal/stats"
)

// Key addresses one series: a machine id (the daemon uses the scenario
// name) and a series name ("cpu0_mhz", "power_w", "cpu3/P-core/cycles").
type Key struct {
	Machine string
	Series  string
}

func (k Key) String() string { return k.Machine + "/" + k.Series }

// Config sizes the store.
type Config struct {
	// Capacity is the per-series ring capacity in stored points
	// (default 4096). The percentile window has the same size.
	Capacity int
	// Downsample is the number of raw samples averaged into one stored
	// point (default 1 = store raw). Streaming aggregates always see the
	// raw values; downsampling only bounds what Snapshot/Range return.
	Downsample int
	// Shards is the number of lock shards (default 8).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Downsample <= 0 {
		c.Downsample = 1
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// series is one ring-buffered signal plus its streaming aggregates.
// Guarded by its shard's mutex.
type series struct {
	ring []Point // fixed capacity, time-ordered
	head int     // next write slot
	n    int     // fill
	agg  stats.Welford
	win  *stats.RingQuantile

	// Downsample accumulator: accN raw samples pending, summing accSum.
	accN   int
	accSum float64
}

func (s *series) push(p Point) {
	s.ring[s.head] = p
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// points returns a fresh time-ordered copy of the ring.
func (s *series) points() []Point {
	out := make([]Point, 0, s.n)
	start := s.head - s.n
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i+len(s.ring))%len(s.ring)])
	}
	return out
}

type shard struct {
	mu     sync.RWMutex
	series map[Key]*series
}

// Store is the sharded time-series store.
type Store struct {
	cfg    Config
	shards []*shard
}

// NewStore builds a store with the given (defaulted) configuration.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	st := &Store{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range st.shards {
		st.shards[i] = &shard{series: map[Key]*series{}}
	}
	return st
}

// Config returns the effective (defaulted) configuration.
func (st *Store) Config() Config { return st.cfg }

func (st *Store) shardOf(k Key) *shard {
	h := fnv.New32a()
	h.Write([]byte(k.Machine))
	h.Write([]byte{0})
	h.Write([]byte(k.Series))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

// Append ingests one raw sample into the keyed series, creating it on
// first use. Safe for concurrent use with other appends and queries.
func (st *Store) Append(k Key, timeSec, value float64) {
	sh := st.shardOf(k)
	sh.mu.Lock()
	s := sh.series[k]
	if s == nil {
		s = &series{
			ring: make([]Point, st.cfg.Capacity),
			win:  stats.NewRingQuantile(st.cfg.Capacity),
		}
		sh.series[k] = s
	}
	s.agg.Add(value)
	s.win.Add(value)
	s.accSum += value
	s.accN++
	if s.accN >= st.cfg.Downsample {
		s.push(Point{TimeSec: timeSec, Value: s.accSum / float64(s.accN)})
		s.accN, s.accSum = 0, 0
	}
	sh.mu.Unlock()
}

// Len returns the number of stored (post-downsample) points of a series,
// 0 when absent.
func (st *Store) Len(k Key) int {
	sh := st.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s := sh.series[k]; s != nil {
		return s.n
	}
	return 0
}

// Snapshot returns a copy of every stored point of a series, oldest
// first, and whether the series exists.
func (st *Store) Snapshot(k Key) ([]Point, bool) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	if s == nil {
		sh.mu.RUnlock()
		return nil, false
	}
	pts := s.points()
	sh.mu.RUnlock()
	return pts, true
}

// Range returns the stored points with FromSec <= TimeSec <= ToSec. A
// negative bound is open. The bool reports series existence (an empty
// range on an existing series is ([], true)).
func (st *Store) Range(k Key, fromSec, toSec float64) ([]Point, bool) {
	pts, ok := st.Snapshot(k)
	if !ok {
		return nil, false
	}
	out := pts[:0]
	for _, p := range pts {
		if fromSec >= 0 && p.TimeSec < fromSec {
			continue
		}
		if toSec >= 0 && p.TimeSec > toSec {
			continue
		}
		out = append(out, p)
	}
	return out, true
}

// Aggregate returns the streaming aggregate of a series: lifetime
// count/sum/mean/stddev/min/max/last from the Welford accumulator and
// windowed p50/p95/p99 over the last Capacity raw samples.
func (st *Store) Aggregate(k Key) (Aggregate, bool) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return Aggregate{}, false
	}
	return aggregateOf(&s.agg, s.win), true
}

func aggregateOf(w *stats.Welford, win *stats.RingQuantile) Aggregate {
	return Aggregate{
		Count:  w.N(),
		Sum:    w.Sum(),
		Mean:   w.Mean(),
		Stddev: w.Stddev(),
		Min:    w.Min(),
		Max:    w.Max(),
		Last:   w.Last(),
		P50:    win.Quantile(50),
		P95:    win.Quantile(95),
		P99:    win.Quantile(99),
	}
}

// Keys returns every series key, sorted by machine then series name.
func (st *Store) Keys() []Key {
	var out []Key
	for _, sh := range st.shards {
		sh.mu.RLock()
		for k := range sh.series {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Machine != out[j].Machine {
			return out[i].Machine < out[j].Machine
		}
		return out[i].Series < out[j].Series
	})
	return out
}

// Machines returns the distinct machine ids present, sorted.
func (st *Store) Machines() []string {
	seen := map[string]bool{}
	for _, k := range st.Keys() {
		seen[k.Machine] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// SeriesOf returns the sorted series names of one machine.
func (st *Store) SeriesOf(machine string) []string {
	var out []string
	for _, k := range st.Keys() {
		if k.Machine == machine {
			out = append(out, k.Series)
		}
	}
	return out
}

// NumSeries returns the total series count.
func (st *Store) NumSeries() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// CounterSeriesName is the naming convention for per-core counter series:
// cpu<N>/<core-type>/<kind>, e.g. "cpu3/P-core/instructions".
func CounterSeriesName(cpu int, typeName, kind string) string {
	return fmt.Sprintf("cpu%d/%s/%s", cpu, typeName, kind)
}

// MeasureSeriesName is the naming convention for the PAPI-probe value
// series of a fault scenario: measure/<event>/<field>, e.g.
// "measure/PAPI_TOT_CYC/final".
func MeasureSeriesName(event, field string) string {
	return fmt.Sprintf("measure/%s/%s", event, field)
}

// DegradationSeriesName is the naming convention for the probe's
// degradation tallies, e.g. "degradation/busy_retries".
func DegradationSeriesName(counter string) string {
	return "degradation/" + counter
}

// parseCounterSeries splits a counter series name into its parts.
func parseCounterSeries(name string) (cpu, typeName, kind string, ok bool) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "cpu") {
		return "", "", "", false
	}
	return strings.TrimPrefix(parts[0], "cpu"), parts[1], parts[2], true
}

// TypeAggregates groups one machine's counter series of the given kind
// ("instructions", "cycles", "llc-refs", "llc-misses") by core type and
// returns one merged aggregate per type: Welford accumulators are merged
// exactly (the per-core-type mean/stddev of the per-sample values),
// LastSum is the sum of each member's last value (the system-wide per-type
// counter total, since the series carry cumulative counts), and
// percentiles are computed over the members' combined recent windows.
func (st *Store) TypeAggregates(machine, kind string) []TypeAggregate {
	type group struct {
		n       int
		w       stats.Welford
		window  []float64
		lastSum float64
	}
	groups := map[string]*group{}
	for _, sh := range st.shards {
		sh.mu.RLock()
		for k, s := range sh.series {
			if k.Machine != machine {
				continue
			}
			_, typeName, kd, ok := parseCounterSeries(k.Series)
			if !ok || kd != kind {
				continue
			}
			g := groups[typeName]
			if g == nil {
				g = &group{}
				groups[typeName] = g
			}
			g.n++
			g.w.Merge(s.agg)
			g.window = append(g.window, s.win.Window()...)
			g.lastSum += s.agg.Last()
		}
		sh.mu.RUnlock()
	}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TypeAggregate, 0, len(names))
	for _, name := range names {
		g := groups[name]
		agg := Aggregate{
			Count:  g.w.N(),
			Sum:    g.w.Sum(),
			Mean:   g.w.Mean(),
			Stddev: g.w.Stddev(),
			Min:    g.w.Min(),
			Max:    g.w.Max(),
			Last:   g.w.Last(),
			P50:    stats.Percentile(g.window, 50),
			P95:    stats.Percentile(g.window, 95),
			P99:    stats.Percentile(g.window, 99),
		}
		out = append(out, TypeAggregate{Type: name, Series: g.n, LastSum: g.lastSum, Agg: agg})
	}
	return out
}
