package telemetry

import (
	"fmt"

	"hetpapi/internal/stats"
)

// Rung identifies one downsampling resolution. Every series carries all
// rungs, folded at ingest: a query over the 1m rung walks pre-merged
// bucket aggregates and never touches the raw ring.
type Rung int

const (
	// RungRaw is the undownsampled ring itself (width 0).
	RungRaw Rung = iota
	// Rung1s buckets samples into 1-second windows of simulated time.
	Rung1s
	// Rung10s buckets samples into 10-second windows.
	Rung10s
	// Rung1m buckets samples into 60-second windows.
	Rung1m

	numRungs
)

var rungWidths = [numRungs]float64{0, 1, 10, 60}
var rungNames = [numRungs]string{"raw", "1s", "10s", "1m"}

// Width returns the rung's bucket width in seconds (0 for RungRaw).
func (r Rung) Width() float64 {
	if r < 0 || r >= numRungs {
		return 0
	}
	return rungWidths[r]
}

func (r Rung) String() string {
	if r < 0 || r >= numRungs {
		return fmt.Sprintf("rung(%d)", int(r))
	}
	return rungNames[r]
}

// ParseRung maps a rung name ("raw", "1s", "10s", "1m"; "" means raw)
// to its Rung.
func ParseRung(s string) (Rung, error) {
	if s == "" {
		return RungRaw, nil
	}
	for i, name := range rungNames {
		if s == name {
			return Rung(i), nil
		}
	}
	return 0, fmt.Errorf("unknown rung %q (want raw, 1s, 10s or 1m)", s)
}

// Rungs returns the downsampled rungs, finest first (excludes RungRaw).
func Rungs() []Rung { return []Rung{Rung1s, Rung10s, Rung1m} }

// RungPoint is one closed (or still-open) downsampling bucket: the
// bucket's aligned start time and the mergeable aggregate of every
// sample that fell into it.
type RungPoint struct {
	TimeSec float64      `json:"t"`
	Agg     stats.Bucket `json:"agg"`
}
