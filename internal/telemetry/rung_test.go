package telemetry

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestParseRung(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Rung
		err  bool
	}{
		{"", RungRaw, false},
		{"raw", RungRaw, false},
		{"1s", Rung1s, false},
		{"10s", Rung10s, false},
		{"1m", Rung1m, false},
		{"2s", 0, true},
		{"60s", 0, true},
	} {
		got, err := ParseRung(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseRung(%q) = %v, %v", tc.in, got, err)
		}
	}
	if Rung1s.Width() != 1 || Rung10s.Width() != 10 || Rung1m.Width() != 60 || RungRaw.Width() != 0 {
		t.Fatal("rung widths wrong")
	}
}

// TestRungDownsampleBasics: samples at a known cadence land in the
// right buckets, the open bucket is returned last, and every rung's
// merged view equals the raw stream's totals (the associativity the
// hierarchy promises).
func TestRungDownsampleBasics(t *testing.T) {
	st := NewStore(Config{Capacity: 1024, RungCapacity: 1024})
	k := Key{"m", "power_w"}
	// 4 samples per second for 25 seconds: values 0..99 at t = i/4.
	const n = 100
	var sum float64
	for i := 0; i < n; i++ {
		st.Append(k, float64(i)/4, float64(i))
		sum += float64(i)
	}
	for _, r := range Rungs() {
		pts, ok := st.RungRange(k, r, -1, -1)
		if !ok || len(pts) == 0 {
			t.Fatalf("rung %v missing", r)
		}
		var total int64
		var vsum float64
		for i, p := range pts {
			if want := math.Floor(p.TimeSec/r.Width()) * r.Width(); p.TimeSec != want {
				t.Fatalf("rung %v bucket %d start %g not aligned to width %g", r, i, p.TimeSec, r.Width())
			}
			if i > 0 && p.TimeSec <= pts[i-1].TimeSec {
				t.Fatalf("rung %v buckets out of order: %g after %g", r, p.TimeSec, pts[i-1].TimeSec)
			}
			total += p.Agg.N
			vsum += p.Agg.Sum
		}
		if total != n || vsum != sum {
			t.Fatalf("rung %v merged N=%d sum=%g, want %d/%g", r, total, vsum, n, sum)
		}
	}
	// 25s of data at the 1s rung: 24 closed + 1 open bucket, each with 4
	// samples.
	pts, _ := st.RungRange(k, Rung1s, -1, -1)
	if len(pts) != 25 {
		t.Fatalf("1s rung has %d buckets, want 25", len(pts))
	}
	for _, p := range pts {
		if p.Agg.N != 4 {
			t.Fatalf("bucket at %g has N=%d, want 4", p.TimeSec, p.Agg.N)
		}
	}
	// Window query: buckets whose start lies in [5, 9].
	win, _ := st.RungRange(k, Rung1s, 5, 9)
	if len(win) != 5 || win[0].TimeSec != 5 || win[4].TimeSec != 9 {
		t.Fatalf("window buckets %+v", win)
	}
	// Raw fallback wraps each stored point in a single-sample bucket.
	raw, _ := st.RungRange(k, RungRaw, 0, 1)
	if len(raw) != 5 {
		t.Fatalf("raw rung window returned %d buckets, want 5", len(raw))
	}
	for _, p := range raw {
		if p.Agg.N != 1 || p.Agg.Min != p.Agg.Max || p.Agg.Last != p.Agg.Sum {
			t.Fatalf("raw bucket %+v not a single-sample wrap", p)
		}
	}
}

// TestRungRingWrapAcrossBoundaries: a raw ring far smaller than the
// rung window still yields complete rung buckets (rungs fold at ingest,
// not from the ring), and once the rung ring itself wraps the oldest
// buckets fall off while the retained window stays contiguous.
func TestRungRingWrapAcrossBoundaries(t *testing.T) {
	st := NewStore(Config{Capacity: 8, RungCapacity: 10})
	k := Key{"m", "s"}
	// 2 samples/s for 30s: the raw ring (8) wraps many times; the 1s
	// rung ring (10 closed buckets) wraps too.
	for i := 0; i < 60; i++ {
		st.Append(k, float64(i)/2, float64(i))
	}
	pts, ok := st.RungRange(k, Rung1s, -1, -1)
	if !ok {
		t.Fatal("series missing")
	}
	// 29 closed buckets, ring keeps 10, plus the open bucket at t=29.
	if len(pts) != 11 {
		t.Fatalf("got %d buckets, want 11 (10 closed + open)", len(pts))
	}
	for i, p := range pts {
		if want := float64(19 + i); p.TimeSec != want {
			t.Fatalf("bucket %d at t=%g, want %g (contiguous retained window)", i, p.TimeSec, want)
		}
		if p.Agg.N != 2 {
			t.Fatalf("bucket at %g has N=%d, want 2", p.TimeSec, p.Agg.N)
		}
	}
	// The coarser rungs kept everything: 10s rung has 3 buckets + open,
	// covering all 60 samples.
	pts10, _ := st.RungRange(k, Rung10s, -1, -1)
	var n int64
	for _, p := range pts10 {
		n += p.Agg.N
	}
	if n != 60 {
		t.Fatalf("10s rung covers %d samples, want 60", n)
	}
}

// TestRungSparseSeries: widely separated samples produce only the
// buckets that actually saw data — no zero-filled gaps.
func TestRungSparseSeries(t *testing.T) {
	st := NewStore(Config{})
	k := Key{"m", "sparse"}
	for _, tv := range [][2]float64{{0.5, 1}, {100.25, 2}, {100.75, 3}, {3600, 4}} {
		st.Append(k, tv[0], tv[1])
	}
	pts, _ := st.RungRange(k, Rung1s, -1, -1)
	if len(pts) != 3 {
		t.Fatalf("sparse 1s rung has %d buckets, want 3", len(pts))
	}
	if pts[0].TimeSec != 0 || pts[1].TimeSec != 100 || pts[2].TimeSec != 3600 {
		t.Fatalf("sparse bucket starts %+v", pts)
	}
	if pts[1].Agg.N != 2 || pts[1].Agg.Sum != 5 {
		t.Fatalf("middle bucket %+v, want two samples summing 5", pts[1].Agg)
	}
	// The open (last) bucket is returned even though nothing closed it.
	if pts[2].Agg.N != 1 || pts[2].Agg.Last != 4 {
		t.Fatalf("open bucket %+v", pts[2].Agg)
	}
}

// TestAppendRejectsNonFinite: NaN/±Inf values or timestamps never reach
// the rings, aggregates or rungs; the store counts them instead.
func TestAppendRejectsNonFinite(t *testing.T) {
	st := NewStore(Config{})
	k := Key{"m", "s"}
	st.Append(k, 0, 1)
	st.Append(k, 1, math.NaN())
	st.Append(k, 2, math.Inf(1))
	st.Append(k, 3, math.Inf(-1))
	st.Append(k, math.NaN(), 4)
	st.Append(k, math.Inf(1), 5)
	st.Append(k, 4, 2)
	if got := st.Rejected(); got != 5 {
		t.Fatalf("Rejected = %d, want 5", got)
	}
	agg, _ := st.Aggregate(k)
	if agg.Count != 2 || agg.Min != 1 || agg.Max != 2 {
		t.Fatalf("aggregate %+v polluted by non-finite samples", agg)
	}
	pts, _ := st.Snapshot(k)
	if len(pts) != 2 {
		t.Fatalf("%d stored points, want 2", len(pts))
	}
	for _, r := range Rungs() {
		for _, p := range mustRung(t, st, k, r) {
			if p.Agg.N != 1 && p.Agg.N != 2 {
				t.Fatalf("rung %v bucket %+v", r, p)
			}
			if math.IsNaN(p.Agg.Sum) || math.IsInf(p.Agg.Sum, 0) ||
				math.IsInf(p.Agg.Max, 0) || math.IsInf(p.Agg.Min, 0) {
				t.Fatalf("rung %v bucket %+v contains non-finite", r, p)
			}
		}
	}
}

func mustRung(t *testing.T, st *Store, k Key, r Rung) []RungPoint {
	t.Helper()
	pts, ok := st.RungRange(k, r, -1, -1)
	if !ok {
		t.Fatalf("series %v missing", k)
	}
	return pts
}

// TestRungOutOfOrderFoldsIntoOpenBucket: a late sample (time before the
// open bucket) folds into the open bucket instead of reopening a closed
// one, keeping the ring time-ordered.
func TestRungOutOfOrderFoldsIntoOpenBucket(t *testing.T) {
	st := NewStore(Config{})
	k := Key{"m", "s"}
	st.Append(k, 0.2, 1)
	st.Append(k, 5.1, 2) // closes bucket 0, opens bucket 5
	st.Append(k, 3.0, 7) // late: folds into the open bucket 5
	pts, _ := st.RungRange(k, Rung1s, -1, -1)
	if len(pts) != 2 {
		t.Fatalf("%d buckets, want 2", len(pts))
	}
	if pts[1].TimeSec != 5 || pts[1].Agg.N != 2 || pts[1].Agg.Sum != 9 {
		t.Fatalf("open bucket %+v, want late sample folded in", pts[1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeSec <= pts[i-1].TimeSec {
			t.Fatal("ring not time-ordered after out-of-order ingest")
		}
	}
}

// TestConcurrentIngestVsRungQueries hammers the store with fleet-style
// concurrent writers while rung and fleet queries run — meaningful
// under -race.
func TestConcurrentIngestVsRungQueries(t *testing.T) {
	st := NewStore(Config{Capacity: 128, RungCapacity: 64, Shards: 4})
	const writers = 8
	var wgw, wgr sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wgw.Add(1)
		go func(w int) {
			defer wgw.Done()
			machine := fmt.Sprintf("m%04d", w)
			st.SetMeta(machine, MachineMeta{Template: "tpl"})
			for i := 0; i < 2000; i++ {
				tsec := float64(i) / 10
				st.Append(Key{machine, "power_w"}, tsec, 40+float64(i%7))
				st.Append(Key{machine, TypeSeriesName("P-core", "instructions")}, tsec, float64(i)*1e6)
			}
		}(w)
	}
	wgr.Add(1)
	go func() {
		defer wgr.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range Rungs() {
				st.RungRange(Key{"m0000", "power_w"}, r, -1, -1)
				st.FleetQuery(FleetQueryRequest{Rung: r, FromSec: -1, ToSec: -1, Timeline: true})
				st.RungSummary(Key{"m0003", "power_w"}, r, -1, -1)
			}
		}
	}()
	wgr.Add(1)
	go func() {
		defer wgr.Done()
		buf := make([]Point, 0, 256)
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf = buf[:0]
			buf, _ = st.SnapshotInto(Key{"m0001", "power_w"}, buf)
			st.RangeInto(Key{"m0002", "power_w"}, 10, 50, buf[:0])
		}
	}()
	wgw.Wait()
	close(stop)
	wgr.Wait()

	// Post-drain sanity: every machine's rungs carry all 2000 samples.
	for w := 0; w < writers; w++ {
		b, ok := st.RungSummary(Key{fmt.Sprintf("m%04d", w), "power_w"}, Rung1m, -1, -1)
		if !ok || b.N != 2000 {
			t.Fatalf("writer %d rung summary %+v", w, b)
		}
	}
}

// TestFleetQueryGroupsAndFilters: population aggregation groups by
// (core type, kind) across machines, honors filters, includes the
// merged timeline, and rejects the raw rung.
func TestFleetQueryGroupsAndFilters(t *testing.T) {
	st := NewStore(Config{})
	for m := 0; m < 4; m++ {
		machine := fmt.Sprintf("m%04d", m)
		tpl := "small"
		if m >= 2 {
			tpl = "big"
		}
		st.SetMeta(machine, MachineMeta{Template: tpl, Model: "raptorlake"})
		for i := 0; i < 40; i++ {
			tsec := float64(i) / 2
			st.Append(Key{machine, "power_w"}, tsec, float64(40+m))
			st.Append(Key{machine, TypeSeriesName("P-core", "instructions")}, tsec, float64(i*1000*(m+1)))
			st.Append(Key{machine, TypeSeriesName("E-core", "instructions")}, tsec, float64(i*100*(m+1)))
			st.Append(Key{machine, DegradationSeriesName("busy_retries")}, tsec, float64(m))
		}
	}
	// Non-population series must not leak into the view.
	st.Append(Key{"fleet", "selfoverhead/points"}, 0, 123)

	if _, err := st.FleetQuery(FleetQueryRequest{Rung: RungRaw, FromSec: -1, ToSec: -1}); err == nil {
		t.Fatal("raw rung must be rejected for population queries")
	}

	resp, err := st.FleetQuery(FleetQueryRequest{Rung: Rung1s, FromSec: -1, ToSec: -1, Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Machines != 4 {
		t.Fatalf("machines = %d, want 4", resp.Machines)
	}
	wantGroups := []string{"E-core/instructions", "P-core/instructions",
		"degradation/busy_retries", "machine/power_w"}
	var got []string
	for _, g := range resp.Groups {
		got = append(got, g.Type+"/"+g.Kind)
		if g.Machines != 4 || g.Series != 4 {
			t.Fatalf("group %s machines=%d series=%d, want 4/4", g.Type+"/"+g.Kind, g.Machines, g.Series)
		}
		if len(g.Timeline) == 0 {
			t.Fatalf("group %s missing timeline", g.Kind)
		}
		for i := 1; i < len(g.Timeline); i++ {
			if g.Timeline[i].TimeSec <= g.Timeline[i-1].TimeSec {
				t.Fatalf("group %s timeline not sorted", g.Kind)
			}
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(wantGroups) {
		t.Fatalf("groups %v, want %v", got, wantGroups)
	}
	// power_w group: 4 machines × 20 1s-buckets, every sample in [40,43].
	for _, g := range resp.Groups {
		if g.Type == "machine" && g.Kind == "power_w" {
			if g.Merged.Min != 40 || g.Merged.Max != 43 || g.Samples != 160 {
				t.Fatalf("power group %+v", g)
			}
			if g.LastSum != 40+41+42+43 {
				t.Fatalf("power LastSum = %g", g.LastSum)
			}
		}
	}

	// Filters: template narrows the population, kind narrows the groups.
	small, err := st.FleetQuery(FleetQueryRequest{Rung: Rung10s, FromSec: -1, ToSec: -1, Template: "small", Kind: "power_w"})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Groups) != 1 || small.Groups[0].Machines != 2 || small.Machines != 2 {
		t.Fatalf("template filter %+v", small)
	}
	if small.Groups[0].Merged.Max != 41 {
		t.Fatalf("small population max power %g, want 41", small.Groups[0].Merged.Max)
	}
	pre, err := st.FleetQuery(FleetQueryRequest{Rung: Rung1s, FromSec: -1, ToSec: -1, Machine: "m000", Kind: "instructions", Type: "P-core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Groups) != 1 || pre.Groups[0].Series != 4 {
		t.Fatalf("machine-prefix filter %+v", pre)
	}
}

// TestFleetQueryDeterministicAcrossIngestOrder: the same logical
// samples ingested by differently-interleaved writers produce
// byte-identical FleetQuery results — the shard-map iteration order
// must not leak into the floating-point accumulation.
func TestFleetQueryDeterministicAcrossIngestOrder(t *testing.T) {
	build := func(perm []int) *Store {
		st := NewStore(Config{Shards: 4})
		for _, m := range perm {
			machine := fmt.Sprintf("m%04d", m)
			for i := 0; i < 30; i++ {
				v := float64(m+1) * (1.0 + float64(i)*0.1)
				st.Append(Key{machine, "power_w"}, float64(i)/3, v)
				st.Append(Key{machine, TypeSeriesName("P-core", "cycles")}, float64(i)/3, v*1e6)
			}
		}
		return st
	}
	a := build([]int{0, 1, 2, 3, 4})
	b := build([]int{4, 2, 0, 3, 1})
	for _, r := range Rungs() {
		ra, err := a.FleetQuery(FleetQueryRequest{Rung: r, Timeline: true})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.FleetQuery(FleetQueryRequest{Rung: r, Timeline: true})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", ra) != fmt.Sprintf("%+v", rb) {
			t.Fatalf("rung %v: results differ across ingest orders:\n%+v\n%+v", r, ra, rb)
		}
	}
}

// TestRungSummary merges a window into a single bucket.
func TestRungSummary(t *testing.T) {
	st := NewStore(Config{})
	k := Key{"m", "s"}
	for i := 0; i < 30; i++ {
		st.Append(k, float64(i), float64(i))
	}
	b, ok := st.RungSummary(k, Rung10s, -1, -1)
	if !ok || b.N != 30 || b.Min != 0 || b.Max != 29 || b.Last != 29 {
		t.Fatalf("summary %+v", b)
	}
	// Window restricted to bucket starts in [10, 19]: one 10s bucket.
	b, ok = st.RungSummary(k, Rung10s, 10, 19)
	if !ok || b.N != 10 || b.Min != 10 || b.Max != 19 {
		t.Fatalf("windowed summary %+v", b)
	}
	if _, ok := st.RungSummary(Key{"m", "nope"}, Rung10s, -1, -1); ok {
		t.Fatal("missing series must report !ok")
	}
}
