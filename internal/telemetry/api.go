package telemetry

import (
	"fmt"
	"net/url"
	"strconv"
)

// Wire types of the hetpapid HTTP JSON API, shared by the server, the
// client package and the daemon's tests.

// Point is one stored sample.
type Point struct {
	TimeSec float64 `json:"t"`
	Value   float64 `json:"v"`
}

// Aggregate is the streaming summary of a series: lifetime moments from
// the Welford accumulator, percentiles over the recent window.
type Aggregate struct {
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Last   float64 `json:"last"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// TypeAggregate is one core type's merged aggregate over its member
// counter series (per-core-type sum/mean/percentiles).
type TypeAggregate struct {
	// Type is the core type name ("P-core", "LITTLE", ...).
	Type string `json:"type"`
	// Series is the number of member series merged.
	Series int `json:"series"`
	// LastSum is the sum of the members' latest values — for cumulative
	// counter series, the live system-wide per-type total.
	LastSum float64 `json:"last_sum"`
	// Agg is the merged aggregate of the members' samples.
	Agg Aggregate `json:"agg"`
}

// HealthInfo is the /health payload.
type HealthInfo struct {
	Status    string  `json:"status"`
	UptimeSec float64 `json:"uptime_sec"`
	Machines  int     `json:"machines"`
	Series    int     `json:"series"`
}

// MachineInfo is one entry of the /machines payload: a collector
// goroutine's identity and its self-overhead accounting.
type MachineInfo struct {
	// Name is the machine id (the daemon uses the scenario name).
	Name string `json:"name"`
	// Scenario and Model echo the spec driving this machine.
	Scenario string `json:"scenario"`
	Model    string `json:"model"`
	// Running reports whether a collection run is in flight.
	Running bool `json:"running"`
	// Runs counts completed scenario runs (loop mode restarts).
	Runs int64 `json:"runs"`
	// Ticks is the number of simulator ticks observed.
	Ticks int64 `json:"ticks"`
	// SimSec is the simulated time covered so far.
	SimSec float64 `json:"sim_sec"`
	// IngestSec is the wall-clock time spent inside the telemetry hook;
	// WallSec is the wall-clock span of the whole run loop. Their ratio
	// and the per-tick cost are the collector's self-overhead gauge.
	IngestSec          float64 `json:"ingest_sec"`
	WallSec            float64 `json:"wall_sec"`
	OverheadPerTickSec float64 `json:"overhead_per_tick_sec"`
	OverheadRatio      float64 `json:"overhead_ratio"`
}

// SeriesInfo is one entry of the /series payload.
type SeriesInfo struct {
	Name string `json:"name"`
	// Points is the stored (post-downsample) ring fill; Agg.Count is the
	// raw ingested sample count.
	Points int       `json:"points"`
	Agg    Aggregate `json:"agg"`
}

// QueryRequest parameterizes /query. Exactly one of Series or Kind must
// be set: Series asks for one series' points (and, with Agg, its
// streaming aggregate); Kind with By="type" asks for the per-core-type
// grouped aggregates of that counter kind.
type QueryRequest struct {
	Machine string
	Series  string
	// FromSec/ToSec bound the returned points; zero or negative means
	// open (the zero value queries the whole window).
	FromSec float64
	ToSec   float64
	// Agg attaches the streaming aggregate to a series query.
	Agg bool
	// Kind selects a counter kind ("instructions", "cycles", "llc-refs",
	// "llc-misses") for a By="type" grouped query.
	Kind string
	By   string
	// Rung selects a downsampling resolution ("1s", "10s", "1m"):
	// the response then carries bucket aggregates instead of raw
	// points. Empty (or "raw") returns the raw ring.
	Rung string
}

// Values encodes the request as URL query parameters.
func (q QueryRequest) Values() url.Values {
	v := url.Values{}
	v.Set("machine", q.Machine)
	if q.Series != "" {
		v.Set("series", q.Series)
	}
	if q.FromSec > 0 {
		v.Set("from", strconv.FormatFloat(q.FromSec, 'f', -1, 64))
	}
	if q.ToSec > 0 {
		v.Set("to", strconv.FormatFloat(q.ToSec, 'f', -1, 64))
	}
	if q.Agg {
		v.Set("agg", "1")
	}
	if q.Kind != "" {
		v.Set("kind", q.Kind)
	}
	if q.By != "" {
		v.Set("by", q.By)
	}
	if q.Rung != "" {
		v.Set("rung", q.Rung)
	}
	return v
}

// QueryResponse is the /query payload.
type QueryResponse struct {
	Machine string `json:"machine"`
	Series  string `json:"series,omitempty"`
	// Points holds the series points in range (series queries).
	Points []Point `json:"points,omitempty"`
	// Aggregate is the series' streaming aggregate (series queries with
	// agg=1).
	Aggregate *Aggregate `json:"aggregate,omitempty"`
	// Groups holds the per-core-type aggregates (by=type queries).
	Groups []TypeAggregate `json:"groups,omitempty"`
	// Rung and Buckets hold the downsampled view (rung= queries):
	// bucket aggregates at the requested resolution, the still-open
	// bucket last.
	Rung    string      `json:"rung,omitempty"`
	Buckets []RungPoint `json:"buckets,omitempty"`
}

// MeasureValueInfo is one probe event's latest reading in the
// /degradations payload.
type MeasureValueInfo struct {
	Event      string  `json:"event"`
	Final      float64 `json:"final"`
	ErrorBound float64 `json:"error_bound"`
}

// DegradationInfo is one machine's entry of the /degradations payload:
// the latest graceful-degradation tallies and per-event probe readings,
// assembled from the degradation/* and measure/* series the collector
// exports. Machines without a measurement probe are omitted.
type DegradationInfo struct {
	Machine string `json:"machine"`
	// Counters maps tally names (busy_retries, deferred_starts,
	// multiplex_fallback, hotplug_rebuilds, stale_reads, degraded_reads)
	// to their latest values.
	Counters map[string]float64 `json:"counters"`
	// Events holds the probe's latest per-event values.
	Events []MeasureValueInfo `json:"events,omitempty"`
}

// APIError is the JSON error body every non-200 endpoint response
// carries.
type APIError struct {
	Status int    `json:"status"`
	Error  string `json:"error"`
}

func (e APIError) String() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Error)
}
