package telemetry

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hetpapi/internal/stats"
)

func TestStoreRingWrapAndSnapshot(t *testing.T) {
	st := NewStore(Config{Capacity: 4, Shards: 2})
	k := Key{"m", "s"}
	for i := 0; i < 6; i++ {
		st.Append(k, float64(i), float64(i*10))
	}
	pts, ok := st.Snapshot(k)
	if !ok {
		t.Fatal("series missing")
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4 (ring capacity)", len(pts))
	}
	for i, p := range pts {
		wantT := float64(i + 2)
		if p.TimeSec != wantT || p.Value != wantT*10 {
			t.Fatalf("point %d = %+v, want t=%g v=%g", i, p, wantT, wantT*10)
		}
	}
	if st.Len(k) != 4 {
		t.Fatalf("Len = %d, want 4", st.Len(k))
	}
	if _, ok := st.Snapshot(Key{"m", "absent"}); ok {
		t.Fatal("absent series reported present")
	}
}

func TestStoreDownsampleAveragesRawPoints(t *testing.T) {
	st := NewStore(Config{Capacity: 8, Downsample: 2})
	k := Key{"m", "s"}
	for i, v := range []float64{10, 20, 30, 50, 70} {
		st.Append(k, float64(i), v)
	}
	pts, _ := st.Snapshot(k)
	// Pairs (10,20) and (30,50) complete; 70 is still accumulating.
	if len(pts) != 2 {
		t.Fatalf("got %d stored points, want 2", len(pts))
	}
	if pts[0].Value != 15 || pts[0].TimeSec != 1 {
		t.Fatalf("first stored point %+v, want avg 15 at t=1", pts[0])
	}
	if pts[1].Value != 40 || pts[1].TimeSec != 3 {
		t.Fatalf("second stored point %+v, want avg 40 at t=3", pts[1])
	}
	// Streaming aggregates see every raw sample.
	agg, _ := st.Aggregate(k)
	if agg.Count != 5 || agg.Last != 70 || agg.Min != 10 || agg.Max != 70 {
		t.Fatalf("aggregate over raw samples wrong: %+v", agg)
	}
}

func TestStoreRange(t *testing.T) {
	st := NewStore(Config{})
	k := Key{"m", "s"}
	for i := 0; i < 10; i++ {
		st.Append(k, float64(i), float64(i))
	}
	pts, ok := st.Range(k, 3, 6)
	if !ok || len(pts) != 4 || pts[0].TimeSec != 3 || pts[3].TimeSec != 6 {
		t.Fatalf("Range(3,6) = %v ok=%v", pts, ok)
	}
	if pts, ok := st.Range(k, -1, -1); !ok || len(pts) != 10 {
		t.Fatalf("open range returned %d points", len(pts))
	}
	if pts, ok := st.Range(k, 100, 200); !ok || len(pts) != 0 {
		t.Fatalf("empty range = %v ok=%v, want [] true", pts, ok)
	}
	if _, ok := st.Range(Key{"m", "absent"}, -1, -1); ok {
		t.Fatal("absent series must report ok=false")
	}
}

func TestStoreAggregateMatchesBatch(t *testing.T) {
	st := NewStore(Config{Capacity: 128})
	k := Key{"m", "s"}
	rng := rand.New(rand.NewSource(3))
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64() * 10
		xs = append(xs, x)
		st.Append(k, float64(i), x)
	}
	agg, ok := st.Aggregate(k)
	if !ok {
		t.Fatal("series missing")
	}
	if agg.Count != 500 {
		t.Fatalf("count %d", agg.Count)
	}
	if got, want := agg.Mean, stats.Mean(xs); got != want && (got-want)/want > 1e-12 {
		t.Fatalf("mean %g vs %g", got, want)
	}
	// Percentiles are windowed over the last Capacity raw samples.
	window := xs[len(xs)-128:]
	for _, c := range []struct {
		p    float64
		got  float64
		name string
	}{{50, agg.P50, "p50"}, {95, agg.P95, "p95"}, {99, agg.P99, "p99"}} {
		if want := stats.Percentile(window, c.p); c.got != want {
			t.Fatalf("%s = %g, want windowed %g", c.name, c.got, want)
		}
	}
}

func TestStoreKeysMachinesSeries(t *testing.T) {
	st := NewStore(Config{Shards: 3})
	st.Append(Key{"b", "y"}, 0, 1)
	st.Append(Key{"a", "z"}, 0, 1)
	st.Append(Key{"a", "x"}, 0, 1)
	keys := st.Keys()
	want := []Key{{"a", "x"}, {"a", "z"}, {"b", "y"}}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if ms := st.Machines(); len(ms) != 2 || ms[0] != "a" || ms[1] != "b" {
		t.Fatalf("machines = %v", ms)
	}
	if ss := st.SeriesOf("a"); len(ss) != 2 || ss[0] != "x" || ss[1] != "z" {
		t.Fatalf("series of a = %v", ss)
	}
	if st.NumSeries() != 3 {
		t.Fatalf("NumSeries = %d", st.NumSeries())
	}
}

func TestStoreTypeAggregates(t *testing.T) {
	st := NewStore(Config{Capacity: 64})
	// Two P-core CPUs and one E-core CPU reporting cumulative counts.
	var pvals []float64
	for i := 0; i < 20; i++ {
		v0, v1, v2 := float64(100*i), float64(200*i), float64(10*i)
		st.Append(Key{"m", CounterSeriesName(0, "P-core", "instructions")}, float64(i), v0)
		st.Append(Key{"m", CounterSeriesName(1, "P-core", "instructions")}, float64(i), v1)
		st.Append(Key{"m", CounterSeriesName(2, "E-core", "instructions")}, float64(i), v2)
		// Decoy series that must not be grouped.
		st.Append(Key{"m", CounterSeriesName(0, "P-core", "cycles")}, float64(i), 1)
		pvals = append(pvals, v0, v1)
	}
	st.Append(Key{"m", "power_w"}, 0, 42)

	groups := st.TypeAggregates("m", "instructions")
	if len(groups) != 2 {
		t.Fatalf("got %d groups: %+v", len(groups), groups)
	}
	e, p := groups[0], groups[1] // sorted by type name
	if e.Type != "E-core" || p.Type != "P-core" {
		t.Fatalf("group order %q,%q", e.Type, p.Type)
	}
	if p.Series != 2 || e.Series != 1 {
		t.Fatalf("member counts p=%d e=%d", p.Series, e.Series)
	}
	if p.LastSum != 100*19+200*19 {
		t.Fatalf("P-core LastSum = %g", p.LastSum)
	}
	if p.Agg.Count != 40 {
		t.Fatalf("P-core merged count = %d", p.Agg.Count)
	}
	if want := stats.Mean(pvals); p.Agg.Mean != want && (p.Agg.Mean-want)/want > 1e-12 {
		t.Fatalf("P-core merged mean %g vs %g", p.Agg.Mean, want)
	}
	if got := st.TypeAggregates("m", "no-such-kind"); len(got) != 0 {
		t.Fatalf("unexpected groups %v", got)
	}
}

// TestStoreConcurrentIngestAndQuery hammers the store with parallel
// writers and readers; run under -race this is the ingest/query data-race
// check the acceptance criteria require.
func TestStoreConcurrentIngestAndQuery(t *testing.T) {
	st := NewStore(Config{Capacity: 256, Shards: 4})
	const writers, samples = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := Key{"m", fmt.Sprintf("s%d", w%4)} // overlap keys across writers
			for i := 0; i < samples; i++ {
				st.Append(k, float64(i), float64(i+w))
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := Key{"m", fmt.Sprintf("s%d", r)}
				st.Snapshot(k)
				st.Range(k, 10, 100)
				st.Aggregate(k)
				st.Keys()
				st.TypeAggregates("m", "instructions")
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	var total int64
	for _, k := range st.Keys() {
		agg, _ := st.Aggregate(k)
		total += agg.Count
	}
	if total != writers*samples {
		t.Fatalf("ingested %d samples, want %d", total, writers*samples)
	}
}
