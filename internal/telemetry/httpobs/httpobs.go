// Package httpobs is the request-level observability layer of the
// hetpapid serving path: an http.Handler middleware that wraps every
// mounted endpoint with per-endpoint latency histograms, status-class
// and error counters, in-flight and bytes-in/out gauges, a gzip-hit
// ratio, and a bounded slow-request ring — plus per-endpoint SLO
// attainment against configurable latency and error-rate targets.
//
// Design constraints follow the repo's monitoring discipline (the RAPL
// overhead study: a monitor's own cost must be measured, not assumed;
// LIKWID: instrumentation must be cheap enough to leave on). The
// steady-state request cost is a read-locked map lookup, a dozen atomic
// adds, and one short per-endpoint critical section for the streaming
// quantile window — endpoints never contend with each other (the locks
// are striped per endpoint), and the response-writer wrapper is pooled
// so the middleware allocates nothing per request in steady state.
// BenchmarkHTTPObsOverhead gates the instrumented-vs-bare handler cost
// at <= 1.05x (recorded in BENCH_10.json).
//
// When a spantrace.Recorder is attached, every request additionally
// emits one "http.<endpoint>" span (category "http") with method,
// status and byte-count args onto the recorder's "http" track, so
// serving-path spans land in the same Perfetto export format as the
// simulator's spans. Timestamps are wall-clock seconds since the
// observer started.
//
// httpobs imports only internal/stats and internal/spantrace, so the
// telemetry server (and any other HTTP surface) can embed it without
// cycles.
package httpobs

import (
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetpapi/internal/spantrace"
	"hetpapi/internal/stats"
)

// Defaults.
const (
	// DefaultSlowRingCapacity bounds the slow-request ring.
	DefaultSlowRingCapacity = 64
	// DefaultSlowThreshold is the latency above which a request enters
	// the slow ring.
	DefaultSlowThreshold = 100 * time.Millisecond
	// DefaultQuantileWindow sizes the per-endpoint RingQuantile window
	// backing p50/p95/p99. Inserts are O(window) memmoves, so the window
	// trades percentile fidelity against the per-request budget.
	DefaultQuantileWindow = 256
	// DefaultSLOLatencyMs / DefaultSLOErrorPct are the serving targets
	// used when the daemon passes none.
	DefaultSLOLatencyMs = 250.0
	DefaultSLOErrorPct  = 1.0
	// MinSLORequests is the sample floor below which burn flags never
	// raise — a single slow request out of three is noise, not a burn.
	MinSLORequests = 10
	// OtherEndpoint is the bucket unmatched request paths fall into, so
	// 404 traffic is counted without letting attackers mint unbounded
	// label cardinality.
	OtherEndpoint = "other"
)

// numBuckets covers log2 latency buckets up to 2^39 ns (~9 minutes);
// slower requests clamp into the last bucket.
const numBuckets = 40

// Config sizes an Obs.
type Config struct {
	// Endpoints lists the known endpoint patterns (exact-match request
	// paths). Requests to any other path are accounted under
	// OtherEndpoint. More patterns can be added later with Register.
	Endpoints []string
	// SlowRingCapacity bounds the slow-request ring (0 = default).
	SlowRingCapacity int
	// SlowThreshold is the latency above which a request is recorded in
	// the slow ring. 0 = default; negative disables the ring.
	SlowThreshold time.Duration
	// QuantileWindow sizes the per-endpoint percentile window (0 =
	// default).
	QuantileWindow int
	// SLOLatencyMs / SLOErrorPct are the initial per-endpoint targets
	// (0 = default). Adjustable at runtime with SetSLO.
	SLOLatencyMs float64
	SLOErrorPct  float64
	// Now overrides the clock (tests inject deterministic time). nil =
	// time.Now.
	Now func() time.Time
}

// Obs is the request observer. All methods are safe for concurrent use.
type Obs struct {
	now   func() time.Time
	start time.Time

	quantileWindow  int
	slowThresholdNs int64 // <0: ring disabled

	sloLatencyMs atomic.Uint64 // float64 bits
	sloErrorPct  atomic.Uint64 // float64 bits

	mu        sync.RWMutex // guards the endpoint registry (read-mostly)
	endpoints map[string]*endpointStats

	requests atomic.Uint64
	inflight atomic.Int64

	tracer atomic.Pointer[spantrace.Recorder]

	slowMu      sync.Mutex
	slow        []SlowRequest
	slowStart   int
	slowN       int
	slowDropped uint64

	wrapPool sync.Pool // *respWriter
}

// endpointStats is one endpoint's accounting. Counters are atomic; the
// streaming mean/percentile accumulators sit behind the endpoint's own
// mutex (the lock stripe), so endpoints never contend with each other.
type endpointStats struct {
	name string

	requests atomic.Uint64
	class    [6]atomic.Uint64 // index status/100 (1xx..5xx; 0 = malformed)
	errors   atomic.Uint64    // status >= 400
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	gzipHits atomic.Uint64
	inflight atomic.Int64
	totalNs  atomic.Uint64
	maxNs    atomic.Uint64
	buckets  [numBuckets]atomic.Uint64
	inSLO    atomic.Uint64 // completed within the latency target of the time

	mu sync.Mutex
	wf stats.Welford      // latency ms, lifetime
	rq *stats.RingQuantile // latency ms, recent window
}

// New builds an observer.
func New(cfg Config) *Obs {
	o := &Obs{
		now:            cfg.Now,
		quantileWindow: cfg.QuantileWindow,
		endpoints:      map[string]*endpointStats{},
	}
	if o.now == nil {
		o.now = time.Now
	}
	o.start = o.now()
	if o.quantileWindow <= 0 {
		o.quantileWindow = DefaultQuantileWindow
	}
	switch {
	case cfg.SlowThreshold < 0:
		o.slowThresholdNs = -1
	case cfg.SlowThreshold == 0:
		o.slowThresholdNs = DefaultSlowThreshold.Nanoseconds()
	default:
		o.slowThresholdNs = cfg.SlowThreshold.Nanoseconds()
	}
	capSlow := cfg.SlowRingCapacity
	if capSlow <= 0 {
		capSlow = DefaultSlowRingCapacity
	}
	o.slow = make([]SlowRequest, capSlow)
	lat, errPct := cfg.SLOLatencyMs, cfg.SLOErrorPct
	if lat <= 0 {
		lat = DefaultSLOLatencyMs
	}
	if errPct <= 0 {
		errPct = DefaultSLOErrorPct
	}
	o.SetSLO(lat, errPct)
	for _, ep := range cfg.Endpoints {
		o.Register(ep)
	}
	o.Register(OtherEndpoint)
	o.wrapPool.New = func() any { return &respWriter{} }
	return o
}

// Register adds an endpoint pattern to the registry (idempotent), so
// later traffic to it is accounted under its own name rather than
// OtherEndpoint. The server calls this for handlers mounted after
// construction.
func (o *Obs) Register(pattern string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.endpoints[pattern]; ok {
		return
	}
	o.endpoints[pattern] = &endpointStats{
		name: pattern,
		rq:   stats.NewRingQuantile(o.quantileWindow),
	}
}

// SetSLO updates the per-endpoint targets: latencyMs is the per-request
// latency target (attainment is the fraction of requests completing
// under it), errorPct the tolerated error rate in percent. Attainment
// is judged against the target in force when each request completes.
func (o *Obs) SetSLO(latencyMs, errorPct float64) {
	o.sloLatencyMs.Store(math.Float64bits(latencyMs))
	o.sloErrorPct.Store(math.Float64bits(errorPct))
}

// SLO returns the current targets.
func (o *Obs) SLO() (latencyMs, errorPct float64) {
	return math.Float64frombits(o.sloLatencyMs.Load()),
		math.Float64frombits(o.sloErrorPct.Load())
}

// AttachTracer hands the observer a span recorder: every subsequent
// request emits one "http.<endpoint>" span onto its "http" track. A
// fresh trace context is begun so serving spans are distinguishable
// from any simulator contexts sharing the recorder. nil detaches.
func (o *Obs) AttachTracer(rec *spantrace.Recorder) {
	if rec != nil {
		rec.BeginContext("http.serve")
	}
	o.tracer.Store(rec)
}

// resolve maps a request path to its endpoint stats.
func (o *Obs) resolve(path string) *endpointStats {
	o.mu.RLock()
	ep := o.endpoints[path]
	if ep == nil {
		ep = o.endpoints[OtherEndpoint]
	}
	o.mu.RUnlock()
	return ep
}

// respWriter captures status, bytes and the gzip content-encoding of
// one response. Pooled: the middleware resets it per request.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	gzip   bool
	wrote  bool
}

func (rw *respWriter) reset(w http.ResponseWriter) {
	rw.ResponseWriter = w
	rw.status = 0
	rw.bytes = 0
	rw.gzip = false
	rw.wrote = false
}

func (rw *respWriter) WriteHeader(code int) {
	if !rw.wrote {
		rw.wrote = true
		rw.status = code
		rw.gzip = rw.Header().Get("Content-Encoding") == "gzip"
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *respWriter) Write(b []byte) (int, error) {
	if !rw.wrote {
		rw.wrote = true
		rw.status = http.StatusOK
		rw.gzip = rw.Header().Get("Content-Encoding") == "gzip"
	}
	n, err := rw.ResponseWriter.Write(b)
	rw.bytes += int64(n)
	return n, err
}

// Middleware wraps next with request accounting. The wrapper measures
// wall time around the whole downstream chain, so composing it outside
// http.TimeoutHandler makes timeout 503s count like any other response.
func (o *Obs) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := o.resolve(r.URL.Path)
		o.inflight.Add(1)
		ep.inflight.Add(1)
		rw := o.wrapPool.Get().(*respWriter)
		rw.reset(w)
		t0 := o.now()
		next.ServeHTTP(rw, r)
		durNs := o.now().Sub(t0).Nanoseconds()
		status, bytesOut, gz := rw.status, rw.bytes, rw.gzip
		if status == 0 {
			status = http.StatusOK // handler never wrote; net/http sends 200
		}
		rw.reset(nil)
		o.wrapPool.Put(rw)
		ep.inflight.Add(-1)
		o.inflight.Add(-1)
		o.record(ep, r, status, bytesOut, gz, durNs, t0)
	})
}

func (o *Obs) record(ep *endpointStats, r *http.Request, status int, bytesOut int64, gz bool, durNs int64, t0 time.Time) {
	if durNs < 0 {
		durNs = 0
	}
	o.requests.Add(1)
	ep.requests.Add(1)
	ci := status / 100
	if ci < 0 || ci > 5 {
		ci = 0
	}
	ep.class[ci].Add(1)
	if status >= 400 {
		ep.errors.Add(1)
	}
	if r.ContentLength > 0 {
		ep.bytesIn.Add(uint64(r.ContentLength))
	}
	if bytesOut > 0 {
		ep.bytesOut.Add(uint64(bytesOut))
	}
	if gz {
		ep.gzipHits.Add(1)
	}
	ep.totalNs.Add(uint64(durNs))
	for {
		cur := ep.maxNs.Load()
		if uint64(durNs) <= cur || ep.maxNs.CompareAndSwap(cur, uint64(durNs)) {
			break
		}
	}
	ep.buckets[log2Bucket(durNs)].Add(1)
	ms := float64(durNs) / 1e6
	lat, _ := o.SLO()
	if ms <= lat {
		ep.inSLO.Add(1)
	}
	ep.mu.Lock()
	ep.wf.Add(ms)
	ep.rq.Add(ms)
	ep.mu.Unlock()

	if o.slowThresholdNs >= 0 && durNs >= o.slowThresholdNs {
		o.pushSlow(SlowRequest{
			Method:   r.Method,
			Path:     r.URL.Path,
			Endpoint: ep.name,
			Status:   status,
			DurMs:    ms,
			AtSec:    t0.Sub(o.start).Seconds(),
		})
	}

	if rec := o.tracer.Load(); rec.Enabled() {
		rec.Span(rec.Track("http"), "http."+ep.name, "http",
			t0.Sub(o.start).Seconds(), float64(durNs)/1e9,
			spantrace.Str("method", r.Method),
			spantrace.Int("status", status),
			spantrace.Int("bytes_out", int(bytesOut)))
	}
}

// pushSlow appends to the bounded slow ring, dropping the oldest entry
// (and counting the drop) on wrap.
func (o *Obs) pushSlow(s SlowRequest) {
	o.slowMu.Lock()
	if o.slowN == len(o.slow) {
		o.slow[o.slowStart] = s
		o.slowStart = (o.slowStart + 1) % len(o.slow)
		o.slowDropped++
	} else {
		o.slow[(o.slowStart+o.slowN)%len(o.slow)] = s
		o.slowN++
	}
	o.slowMu.Unlock()
}

// log2Bucket returns floor(log2(ns)) clamped into [0, numBuckets).
func log2Bucket(ns int64) int {
	if ns < 1 {
		return 0
	}
	b := 63 - bits.LeadingZeros64(uint64(ns))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// SlowRequest is one slow-ring entry.
type SlowRequest struct {
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Endpoint string  `json:"endpoint"`
	Status   int     `json:"status"`
	DurMs    float64 `json:"dur_ms"`
	// AtSec is the request's arrival time in seconds since the observer
	// started.
	AtSec float64 `json:"at_sec"`
}

// SLOStatus is one endpoint's attainment against the serving targets.
type SLOStatus struct {
	LatencyTargetMs float64 `json:"latency_target_ms"`
	// LatencyAttainPct is the percentage of requests that completed
	// within the latency target (judged at completion time).
	LatencyAttainPct float64 `json:"latency_attain_pct"`
	ErrorTargetPct   float64 `json:"error_target_pct"`
	ErrorPct         float64 `json:"error_pct"`
	// LatencyBurn raises when attainment drops below 99% — i.e. more
	// than 1% of requests exceeded the latency target — with at least
	// MinSLORequests samples. ErrorBurn raises when the error rate
	// exceeds its target under the same sample floor.
	LatencyBurn bool `json:"latency_burn"`
	ErrorBurn   bool `json:"error_burn"`
	OK          bool `json:"ok"`
}

// Burn is one incident-ledger entry: an endpoint currently violating a
// serving objective, in the style of internal/fleet's Incident rows.
type Burn struct {
	Endpoint string `json:"endpoint"`
	Kind     string `json:"kind"` // "latency" or "error"
	Detail   string `json:"detail"`
}

// EndpointStatus is one endpoint's /status entry.
type EndpointStatus struct {
	Endpoint    string            `json:"endpoint"`
	Requests    uint64            `json:"requests"`
	InFlight    int64             `json:"in_flight"`
	StatusClass map[string]uint64 `json:"status_class,omitempty"`
	Errors      uint64            `json:"errors"`
	ErrorPct    float64           `json:"error_pct"`
	BytesIn     uint64            `json:"bytes_in"`
	BytesOut    uint64            `json:"bytes_out"`
	GzipHits    uint64            `json:"gzip_hits"`
	GzipPct     float64           `json:"gzip_pct"`
	MeanMs      float64           `json:"mean_ms"`
	MaxMs       float64           `json:"max_ms"`
	P50Ms       float64           `json:"p50_ms"`
	P95Ms       float64           `json:"p95_ms"`
	P99Ms       float64           `json:"p99_ms"`
	// LatencyLog2Ns is the non-empty log2 latency histogram:
	// bucket i counts requests with duration in [2^i, 2^(i+1)) ns.
	LatencyLog2Ns map[int]uint64 `json:"latency_log2_ns,omitempty"`
	SLO           SLOStatus      `json:"slo"`
}

// Status is the /status payload: the serving path's own telemetry.
type Status struct {
	UptimeSec    float64          `json:"uptime_sec"`
	Requests     uint64           `json:"requests"`
	InFlight     int64            `json:"in_flight"`
	Errors       uint64           `json:"errors"`
	SLOLatencyMs float64          `json:"slo_latency_ms"`
	SLOErrorPct  float64          `json:"slo_error_pct"`
	Endpoints    []EndpointStatus `json:"endpoints"`
	Burns        []Burn           `json:"burns"`
	SlowRequests []SlowRequest    `json:"slow_requests"`
	SlowDropped  uint64           `json:"slow_dropped"`
}

var classNames = [6]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}

// Report assembles the point-in-time status. Endpoints that have seen
// no traffic are omitted; the rest are sorted by name.
func (o *Obs) Report() Status {
	lat, errPct := o.SLO()
	st := Status{
		UptimeSec:    o.now().Sub(o.start).Seconds(),
		Requests:     o.requests.Load(),
		InFlight:     o.inflight.Load(),
		SLOLatencyMs: lat,
		SLOErrorPct:  errPct,
		Endpoints:    []EndpointStatus{},
		Burns:        []Burn{},
	}
	o.mu.RLock()
	eps := make([]*endpointStats, 0, len(o.endpoints))
	for _, ep := range o.endpoints {
		eps = append(eps, ep)
	}
	o.mu.RUnlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })
	for _, ep := range eps {
		n := ep.requests.Load()
		if n == 0 {
			continue
		}
		es := EndpointStatus{
			Endpoint: ep.name,
			Requests: n,
			InFlight: ep.inflight.Load(),
			Errors:   ep.errors.Load(),
			BytesIn:  ep.bytesIn.Load(),
			BytesOut: ep.bytesOut.Load(),
			GzipHits: ep.gzipHits.Load(),
			MaxMs:    float64(ep.maxNs.Load()) / 1e6,
		}
		st.Errors += es.Errors
		es.ErrorPct = 100 * float64(es.Errors) / float64(n)
		es.GzipPct = 100 * float64(es.GzipHits) / float64(n)
		for i := range ep.class {
			if c := ep.class[i].Load(); c > 0 {
				if es.StatusClass == nil {
					es.StatusClass = map[string]uint64{}
				}
				es.StatusClass[classNames[i]] = c
			}
		}
		for i := range ep.buckets {
			if c := ep.buckets[i].Load(); c > 0 {
				if es.LatencyLog2Ns == nil {
					es.LatencyLog2Ns = map[int]uint64{}
				}
				es.LatencyLog2Ns[i] = c
			}
		}
		ep.mu.Lock()
		es.MeanMs = ep.wf.Mean()
		es.P50Ms = ep.rq.Quantile(50)
		es.P95Ms = ep.rq.Quantile(95)
		es.P99Ms = ep.rq.Quantile(99)
		ep.mu.Unlock()
		es.SLO = SLOStatus{
			LatencyTargetMs:  lat,
			LatencyAttainPct: 100 * float64(ep.inSLO.Load()) / float64(n),
			ErrorTargetPct:   errPct,
			ErrorPct:         es.ErrorPct,
		}
		if n >= MinSLORequests {
			es.SLO.LatencyBurn = es.SLO.LatencyAttainPct < 99.0
			es.SLO.ErrorBurn = es.ErrorPct > errPct
		}
		es.SLO.OK = !es.SLO.LatencyBurn && !es.SLO.ErrorBurn
		if es.SLO.LatencyBurn {
			st.Burns = append(st.Burns, Burn{
				Endpoint: ep.name, Kind: "latency",
				Detail: fmt.Sprintf("attainment %.1f%% under the %.0fms target (p99 %.1fms)",
					es.SLO.LatencyAttainPct, lat, es.P99Ms),
			})
		}
		if es.SLO.ErrorBurn {
			st.Burns = append(st.Burns, Burn{
				Endpoint: ep.name, Kind: "error",
				Detail: fmt.Sprintf("error rate %.2f%% over the %.2f%% target", es.ErrorPct, errPct),
			})
		}
		st.Endpoints = append(st.Endpoints, es)
	}
	o.slowMu.Lock()
	st.SlowRequests = make([]SlowRequest, 0, o.slowN)
	for i := 0; i < o.slowN; i++ {
		st.SlowRequests = append(st.SlowRequests, o.slow[(o.slowStart+i)%len(o.slow)])
	}
	st.SlowDropped = o.slowDropped
	o.slowMu.Unlock()
	return st
}
