package httpobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzStatusEndpoint drives a fuzzer-chosen request sequence through
// the middleware (each input byte triple picks an endpoint, a status
// code and a latency) and checks the /status invariants: totals equal
// per-endpoint sums across every counter family, rates stay in [0,
// 100], percentiles are ordered, the slow ring never exceeds its
// capacity, and the report survives a JSON round trip.
func FuzzStatusEndpoint(f *testing.F) {
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{1, 9, 200, 2, 13, 0, 3, 4, 255})
	f.Add([]byte{7, 250, 8, 7, 250, 8, 7, 250, 8, 7, 250, 8})

	paths := []string{"/health", "/series", "/query", "/fleet/query", "/metrics"}
	statuses := []int{200, 200, 204, 301, 400, 404, 500, 503}

	f.Fuzz(func(t *testing.T, data []byte) {
		clock := newFakeClock()
		o := New(Config{
			Endpoints:        paths[:3], // the rest land in "other"
			SlowRingCapacity: 4,
			SlowThreshold:    2 * time.Millisecond,
			QuantileWindow:   32,
			SLOLatencyMs:     5,
			Now:              clock.Now,
		})
		inner := func(w http.ResponseWriter, r *http.Request) {
			code := statuses[0]
			if c := r.Header.Get("X-Code"); c != "" {
				fmt.Sscanf(c, "%d", &code)
			}
			if code >= 200 && code != 204 && code != 301 {
				w.Header().Set("Content-Encoding", "gzip")
			}
			w.WriteHeader(code)
			if code != 204 {
				w.Write([]byte("body"))
			}
		}
		h := o.Middleware(http.HandlerFunc(inner))

		var want uint64
		for i := 0; i+2 < len(data); i += 3 {
			path := paths[int(data[i])%len(paths)]
			code := statuses[int(data[i+1])%len(statuses)]
			clock.setStep(time.Duration(data[i+2]) * 100 * time.Microsecond)
			req := httptest.NewRequest("GET", path, strings.NewReader("in"))
			req.Header.Set("X-Code", fmt.Sprint(code))
			h.ServeHTTP(httptest.NewRecorder(), req)
			want++
		}

		st := o.Report()
		if st.Requests != want {
			t.Fatalf("total requests %d, want %d", st.Requests, want)
		}
		if st.InFlight != 0 {
			t.Fatalf("in-flight %d at rest", st.InFlight)
		}
		var sumReq, sumErr, sumClass, sumBuckets uint64
		for _, es := range st.Endpoints {
			sumReq += es.Requests
			sumErr += es.Errors
			for _, c := range es.StatusClass {
				sumClass += c
			}
			for _, c := range es.LatencyLog2Ns {
				sumBuckets += c
			}
			if es.ErrorPct < 0 || es.ErrorPct > 100 ||
				es.GzipPct < 0 || es.GzipPct > 100 ||
				es.SLO.LatencyAttainPct < 0 || es.SLO.LatencyAttainPct > 100 {
				t.Fatalf("rate out of range: %+v", es)
			}
			// The quantile estimator interpolates in float64, so adjacent
			// quantiles of near-identical samples can disagree by an ulp;
			// the ordering invariant holds up to that rounding.
			if es.P50Ms > es.P95Ms+1e-9 || es.P95Ms > es.P99Ms+1e-9 || es.P99Ms > es.MaxMs+1e-9 {
				t.Fatalf("percentiles disordered: p50 %g p95 %g p99 %g max %g",
					es.P50Ms, es.P95Ms, es.P99Ms, es.MaxMs)
			}
			if es.Requests < MinSLORequests && (es.SLO.LatencyBurn || es.SLO.ErrorBurn) {
				t.Fatalf("burn below sample floor: %+v", es)
			}
		}
		if sumReq != want || sumClass != want || sumBuckets != want {
			t.Fatalf("per-endpoint sums %d/%d/%d, want %d", sumReq, sumClass, sumBuckets, want)
		}
		if sumErr != st.Errors {
			t.Fatalf("error sum %d != total %d", sumErr, st.Errors)
		}
		if len(st.SlowRequests) > 4 {
			t.Fatalf("slow ring over capacity: %d", len(st.SlowRequests))
		}
		for _, b := range st.Burns {
			if b.Kind != "latency" && b.Kind != "error" {
				t.Fatalf("unknown burn kind %q", b.Kind)
			}
		}

		// The report must survive a JSON round trip (it is the /status
		// payload) and the exposition must be deterministic.
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Status
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if back.Requests != st.Requests || len(back.Endpoints) != len(st.Endpoints) {
			t.Fatalf("round trip changed the report")
		}
		var b1, b2 strings.Builder
		o.WritePrometheus(&b1)
		o.WritePrometheus(&b2)
		if b1.String() != b2.String() {
			t.Fatal("exposition not deterministic")
		}
	})
}
