package httpobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetpapi/internal/spantrace"
)

// fakeClock advances by step on every Now call, making request
// latencies (measured as one start-to-end Now pair) exactly step.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func (c *fakeClock) setStep(d time.Duration) {
	c.mu.Lock()
	c.step = d
	c.mu.Unlock()
}

// rig builds an Obs around a configurable handler and returns a
// serve(path) helper driving requests through the middleware.
type rig struct {
	obs   *Obs
	clock *fakeClock
	h     http.Handler
}

func newRig(cfg Config, inner http.HandlerFunc) *rig {
	clock := newFakeClock()
	cfg.Now = clock.Now
	o := New(cfg)
	return &rig{obs: o, clock: clock, h: o.Middleware(inner)}
}

func (r *rig) do(method, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	r.h.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	return rec
}

func endpointByName(t *testing.T, st Status, name string) EndpointStatus {
	t.Helper()
	for _, es := range st.Endpoints {
		if es.Endpoint == name {
			return es
		}
	}
	t.Fatalf("endpoint %q not in status: %+v", name, st.Endpoints)
	return EndpointStatus{}
}

func TestEndpointAccounting(t *testing.T) {
	inner := func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			w.Write([]byte("hello world"))
		case "/gz":
			w.Header().Set("Content-Encoding", "gzip")
			w.WriteHeader(200)
			w.Write([]byte("zz"))
		case "/fail":
			w.WriteHeader(500)
			w.Write([]byte("boom"))
		default:
			w.WriteHeader(404)
		}
	}
	r := newRig(Config{Endpoints: []string{"/ok", "/gz", "/fail"}, SlowThreshold: -1}, inner)
	r.clock.setStep(2 * time.Millisecond)
	for i := 0; i < 3; i++ {
		r.do("GET", "/ok")
	}
	r.do("GET", "/gz")
	r.do("GET", "/fail")
	r.do("GET", "/no-such-path")

	st := r.obs.Report()
	if st.Requests != 6 {
		t.Fatalf("total requests = %d, want 6", st.Requests)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after all requests done", st.InFlight)
	}
	if st.Errors != 2 { // 500 + 404
		t.Fatalf("total errors = %d, want 2", st.Errors)
	}

	ok := endpointByName(t, st, "/ok")
	if ok.Requests != 3 || ok.Errors != 0 || ok.StatusClass["2xx"] != 3 {
		t.Fatalf("/ok stats: %+v", ok)
	}
	if ok.BytesOut != 3*uint64(len("hello world")) {
		t.Fatalf("/ok bytes out = %d", ok.BytesOut)
	}
	// The fake clock makes every request exactly 2ms.
	if ok.MeanMs != 2 || ok.P50Ms != 2 || ok.P99Ms != 2 || ok.MaxMs != 2 {
		t.Fatalf("/ok latency: mean %g p50 %g p99 %g max %g, want all 2",
			ok.MeanMs, ok.P50Ms, ok.P99Ms, ok.MaxMs)
	}
	// 2ms = 2e6 ns -> bucket floor(log2(2e6)) = 20.
	if ok.LatencyLog2Ns[20] != 3 {
		t.Fatalf("/ok histogram: %v, want bucket 20 = 3", ok.LatencyLog2Ns)
	}

	gz := endpointByName(t, st, "/gz")
	if gz.GzipHits != 1 || gz.GzipPct != 100 {
		t.Fatalf("/gz gzip stats: %+v", gz)
	}
	if fail := endpointByName(t, st, "/fail"); fail.Errors != 1 || fail.StatusClass["5xx"] != 1 {
		t.Fatalf("/fail stats: %+v", fail)
	}
	// Unmatched paths land in the "other" bucket with their status.
	other := endpointByName(t, st, OtherEndpoint)
	if other.Requests != 1 || other.StatusClass["4xx"] != 1 || other.Errors != 1 {
		t.Fatalf("other stats: %+v", other)
	}
}

func TestSlowRingWraparound(t *testing.T) {
	inner := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) }
	r := newRig(Config{
		Endpoints:        []string{"/x"},
		SlowRingCapacity: 4,
		SlowThreshold:    time.Millisecond,
	}, inner)
	r.clock.setStep(5 * time.Millisecond) // every request is slow
	for i := 0; i < 10; i++ {
		r.do("GET", fmt.Sprintf("/x?i=%d", i))
	}
	st := r.obs.Report()
	if len(st.SlowRequests) != 4 {
		t.Fatalf("slow ring holds %d, want 4", len(st.SlowRequests))
	}
	if st.SlowDropped != 6 {
		t.Fatalf("slow dropped = %d, want 6", st.SlowDropped)
	}
	// The ring keeps the most recent entries, oldest first, and arrival
	// times must ascend.
	for i := 1; i < len(st.SlowRequests); i++ {
		if st.SlowRequests[i].AtSec <= st.SlowRequests[i-1].AtSec {
			t.Fatalf("slow ring not time-ordered: %+v", st.SlowRequests)
		}
	}
	if got := st.SlowRequests[0]; got.Method != "GET" || got.Path != "/x" || got.Status != 200 || got.DurMs != 5 {
		t.Fatalf("slow entry %+v", got)
	}

	// Fast requests stay out of the ring.
	r.clock.setStep(10 * time.Microsecond)
	r.do("GET", "/x")
	if st = r.obs.Report(); len(st.SlowRequests) != 4 || st.SlowDropped != 6 {
		t.Fatalf("fast request entered the slow ring: %+v", st.SlowRequests)
	}
}

func TestSLOBurnFlags(t *testing.T) {
	inner := func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/err") {
			w.WriteHeader(500)
			return
		}
		w.WriteHeader(200)
	}
	r := newRig(Config{
		Endpoints:     []string{"/fast", "/slow", "/err"},
		SLOLatencyMs:  10,
		SLOErrorPct:   1.0,
		SlowThreshold: -1,
	}, inner)

	// Below the sample floor nothing burns, however bad the latencies.
	r.clock.setStep(50 * time.Millisecond)
	for i := 0; i < MinSLORequests-1; i++ {
		r.do("GET", "/slow")
	}
	st := r.obs.Report()
	if es := endpointByName(t, st, "/slow"); es.SLO.LatencyBurn || !es.SLO.OK {
		t.Fatalf("burn below the sample floor: %+v", es.SLO)
	}

	// One more slow request crosses the floor: 10/10 requests over the
	// 10ms target -> attainment 0%, latency burn.
	r.do("GET", "/slow")
	st = r.obs.Report()
	es := endpointByName(t, st, "/slow")
	if es.SLO.LatencyAttainPct != 0 || !es.SLO.LatencyBurn || es.SLO.ErrorBurn || es.SLO.OK {
		t.Fatalf("slow endpoint SLO: %+v", es.SLO)
	}

	// A healthy endpoint: all requests under target, no errors.
	r.clock.setStep(time.Millisecond)
	for i := 0; i < 2*MinSLORequests; i++ {
		r.do("GET", "/fast")
	}
	// An erroring endpoint: all 500s, still fast.
	for i := 0; i < 2*MinSLORequests; i++ {
		r.do("GET", "/err")
	}
	st = r.obs.Report()
	if es := endpointByName(t, st, "/fast"); !es.SLO.OK || es.SLO.LatencyAttainPct != 100 {
		t.Fatalf("fast endpoint SLO: %+v", es.SLO)
	}
	if es := endpointByName(t, st, "/err"); !es.SLO.ErrorBurn || es.SLO.LatencyBurn {
		t.Fatalf("err endpoint SLO: %+v", es.SLO)
	}

	// The burn ledger carries one latency and one error entry.
	var lat, errb int
	for _, b := range st.Burns {
		switch {
		case b.Kind == "latency" && b.Endpoint == "/slow":
			lat++
		case b.Kind == "error" && b.Endpoint == "/err":
			errb++
		default:
			t.Fatalf("unexpected burn %+v", b)
		}
	}
	if lat != 1 || errb != 1 {
		t.Fatalf("burn ledger: %+v", st.Burns)
	}

	// Retargeting the SLO applies to subsequent burn judgments: an error
	// target of 100% tolerates even the all-500 endpoint.
	r.obs.SetSLO(1000, 100)
	st = r.obs.Report()
	if es := endpointByName(t, st, "/err"); es.SLO.ErrorBurn {
		t.Fatalf("err endpoint still burning after retarget: %+v", es.SLO)
	}
}

func TestInFlightGauge(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	inner := func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(200)
	}
	o := New(Config{Endpoints: []string{"/block"}})
	h := o.Middleware(http.HandlerFunc(inner))
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/block", nil))
	}()
	<-entered
	st := o.Report()
	if st.InFlight != 1 {
		t.Fatalf("in-flight = %d with a blocked handler", st.InFlight)
	}
	// The blocked endpoint has seen no *completed* request yet, so it is
	// absent from the per-endpoint list; the global gauge carries it.
	close(release)
	<-done
	st = o.Report()
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after completion", st.InFlight)
	}
	if es := endpointByName(t, st, "/block"); es.InFlight != 0 || es.Requests != 1 {
		t.Fatalf("endpoint after completion: %+v", es)
	}
}

func TestSpanEmission(t *testing.T) {
	inner := func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("12345")) }
	r := newRig(Config{Endpoints: []string{"/health"}, SlowThreshold: -1}, inner)
	rec := spantrace.New(spantrace.Config{})
	rec.Enable()
	r.obs.AttachTracer(rec)
	r.clock.setStep(time.Millisecond)
	r.do("GET", "/health")
	r.do("GET", "/unknown")

	snap := rec.Snapshot()
	if len(snap.Events) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(snap.Events))
	}
	ev := snap.Events[0]
	if ev.Name != "http./health" || ev.Cat != "http" || ev.Phase != spantrace.PhaseSpan {
		t.Fatalf("span %+v", ev)
	}
	if ev.DurSec != 0.001 {
		t.Fatalf("span duration %g, want 0.001", ev.DurSec)
	}
	args := map[string]spantrace.Arg{}
	for _, a := range ev.Args {
		args[a.Key] = a
	}
	if args["status"].FVal != 200 || args["bytes_out"].FVal != 5 || args["method"].SVal != "GET" {
		t.Fatalf("span args %+v", ev.Args)
	}
	if snap.Events[1].Name != "http."+OtherEndpoint {
		t.Fatalf("unmatched path span %q", snap.Events[1].Name)
	}
	if len(snap.Contexts) != 1 {
		t.Fatalf("contexts %+v, want the one http.serve context", snap.Contexts)
	}

	// Detaching stops emission.
	r.obs.AttachTracer(nil)
	r.do("GET", "/health")
	if got := len(rec.Snapshot().Events); got != 2 {
		t.Fatalf("span emitted after detach: %d", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	inner := func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/fail" {
			w.WriteHeader(503)
			return
		}
		w.Write([]byte("ok"))
	}
	r := newRig(Config{Endpoints: []string{"/q", "/fail"}, SlowThreshold: time.Millisecond}, inner)
	r.clock.setStep(4 * time.Millisecond)
	r.do("GET", "/q")
	r.do("GET", "/q")
	r.do("GET", "/fail")

	var b strings.Builder
	r.obs.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`hetpapid_http_requests_total{endpoint="/q",class="2xx"} 2`,
		`hetpapid_http_requests_total{endpoint="/fail",class="5xx"} 1`,
		`hetpapid_http_errors_total{endpoint="/fail"} 1`,
		`hetpapid_http_in_flight{endpoint="/q"} 0`,
		`hetpapid_http_response_bytes_total{endpoint="/q"} 4`,
		`hetpapid_http_latency_ms{endpoint="/q",quantile="0.99"} 4`,
		`hetpapid_http_slo_attainment_pct{endpoint="/q"} 100`,
		`hetpapid_http_slo_burn{endpoint="/q",kind="latency"} 0`,
		`hetpapid_http_slow_requests{ring="slow"} 3`,
		"# TYPE hetpapid_http_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Two scrapes of identical state are byte-identical (no map-order
	// leakage into the exposition).
	var b2 strings.Builder
	r.obs.WritePrometheus(&b2)
	if text != b2.String() {
		t.Fatal("exposition not deterministic across scrapes")
	}
}

// TestConcurrentTraffic drives parallel requests and scrapes through
// the middleware; the race detector is the assertion.
func TestConcurrentTraffic(t *testing.T) {
	inner := func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("x")) }
	o := New(Config{Endpoints: []string{"/a", "/b"}, SlowThreshold: time.Nanosecond})
	h := o.Middleware(http.HandlerFunc(inner))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := "/a"
			if g%2 == 1 {
				path = "/b"
			}
			for i := 0; i < 200; i++ {
				h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", path, nil))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			st := o.Report()
			if st.InFlight < 0 {
				t.Error("negative in-flight")
				return
			}
			var b strings.Builder
			o.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	st := o.Report()
	if st.Requests != 1600 {
		t.Fatalf("requests = %d, want 1600", st.Requests)
	}
	var sum uint64
	for _, es := range st.Endpoints {
		sum += es.Requests
	}
	if sum != 1600 {
		t.Fatalf("per-endpoint requests sum to %d, want 1600", sum)
	}
	if data, err := json.Marshal(st); err != nil || len(data) == 0 {
		t.Fatalf("status does not marshal: %v", err)
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {1024, 10},
		{2_000_000, 20}, {1 << 39, numBuckets - 1}, {1 << 62, numBuckets - 1},
	}
	for _, c := range cases {
		if got := log2Bucket(c.ns); got != c.want {
			t.Errorf("log2Bucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}
