package httpobs

import (
	"fmt"
	"io"
)

// promFamily accumulates one exposition family's sample lines, in the
// same shape the telemetry server uses for its own families.
type promFamily struct {
	name, help, kind string
	lines            []string
}

func (f *promFamily) add(labels string, v float64) {
	f.lines = append(f.lines, fmt.Sprintf("%s{%s} %g", f.name, labels, v))
}

// WritePrometheus appends the hetpapid_http_* families to a /metrics
// exposition: per-endpoint request/status-class/error counters,
// in-flight and byte gauges, gzip hits, latency percentiles and SLO
// attainment/burn gauges, plus the slow-ring fill. Endpoints with no
// traffic are omitted, keeping the exposition proportional to what the
// daemon actually served.
func (o *Obs) WritePrometheus(w io.Writer) {
	req := &promFamily{name: "hetpapid_http_requests_total", help: "Requests served, by endpoint and status class.", kind: "counter"}
	errs := &promFamily{name: "hetpapid_http_errors_total", help: "Requests answered with status >= 400, by endpoint.", kind: "counter"}
	infl := &promFamily{name: "hetpapid_http_in_flight", help: "Requests currently being served, by endpoint.", kind: "gauge"}
	bin := &promFamily{name: "hetpapid_http_request_bytes_total", help: "Request body bytes received, by endpoint.", kind: "counter"}
	bout := &promFamily{name: "hetpapid_http_response_bytes_total", help: "Response body bytes written (post-compression), by endpoint.", kind: "counter"}
	gz := &promFamily{name: "hetpapid_http_gzip_hits_total", help: "Responses served with gzip content-encoding, by endpoint.", kind: "counter"}
	lat := &promFamily{name: "hetpapid_http_latency_ms", help: "Request latency percentiles over the recent window, by endpoint.", kind: "gauge"}
	attain := &promFamily{name: "hetpapid_http_slo_attainment_pct", help: "Percentage of requests within the latency SLO target, by endpoint.", kind: "gauge"}
	burn := &promFamily{name: "hetpapid_http_slo_burn", help: "1 when the endpoint is currently burning a serving objective, by endpoint and kind.", kind: "gauge"}
	slow := &promFamily{name: "hetpapid_http_slow_requests", help: "Slow requests currently held in the bounded ring.", kind: "gauge"}
	slowDrop := &promFamily{name: "hetpapid_http_slow_dropped_total", help: "Slow-ring entries dropped by wraparound.", kind: "counter"}

	st := o.Report()
	for _, es := range st.Endpoints {
		el := fmt.Sprintf("endpoint=%q", es.Endpoint)
		for _, class := range classNames {
			if n, ok := es.StatusClass[class]; ok {
				req.add(fmt.Sprintf("%s,class=%q", el, class), float64(n))
			}
		}
		errs.add(el, float64(es.Errors))
		infl.add(el, float64(es.InFlight))
		bin.add(el, float64(es.BytesIn))
		bout.add(el, float64(es.BytesOut))
		gz.add(el, float64(es.GzipHits))
		lat.add(el+`,quantile="0.5"`, es.P50Ms)
		lat.add(el+`,quantile="0.95"`, es.P95Ms)
		lat.add(el+`,quantile="0.99"`, es.P99Ms)
		attain.add(el, es.SLO.LatencyAttainPct)
		burn.add(el+`,kind="latency"`, b2f(es.SLO.LatencyBurn))
		burn.add(el+`,kind="error"`, b2f(es.SLO.ErrorBurn))
	}
	slow.add(`ring="slow"`, float64(len(st.SlowRequests)))
	slowDrop.add(`ring="slow"`, float64(st.SlowDropped))

	for _, f := range []*promFamily{req, errs, infl, bin, bout, gz, lat, attain, burn, slow, slowDrop} {
		if len(f.lines) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, line := range f.lines {
			fmt.Fprintln(w, line)
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
