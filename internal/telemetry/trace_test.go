package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hetpapi/internal/spantrace"
)

func TestTraceEndpoint(t *testing.T) {
	_, srv := seededServer(t, 0)
	rec := spantrace.New(spantrace.Config{TrackCapacity: 32})
	rec.Enable()
	trk := rec.Track("kernel")
	rec.BeginContext("seed-scenario")
	rec.Instant(trk, "sys.open", "syscall", 0.5, spantrace.Err(nil))
	rec.Span(trk, "papi.start", "papi", 0.5, 0.1)
	srv.AttachTracer("mach", rec)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/trace?machine=mach")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc spantrace.JSONTrace
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("body is not a trace document: %v", err)
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		names = append(names, ev.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"sys.open", "papi.start", "thread_name"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q in %s", want, joined)
		}
	}
	if doc.OtherData == nil || doc.OtherData.Contexts["1"] != "seed-scenario" {
		t.Errorf("otherData = %+v", doc.OtherData)
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/trace", http.StatusBadRequest},            // no machine
		{"/trace?machine=nope", http.StatusNotFound}, // unknown machine
		{"/trace?machine=mach", http.StatusNotFound}, // no recorder attached
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}
}

func TestMetricsSpanCounters(t *testing.T) {
	_, srv := seededServer(t, 0)
	rec := spantrace.New(spantrace.Config{TrackCapacity: 2})
	rec.Enable()
	trk := rec.Track("kernel")
	for i := 0; i < 5; i++ {
		rec.Instant(trk, "e", "c", float64(i))
	}
	srv.AttachTracer("mach", rec)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`hetpapid_spans_emitted_total{machine="mach"} 5`,
		`hetpapid_spans_retained{machine="mach"} 2`,
		`hetpapid_spans_dropped_total{machine="mach"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsWithoutTracerOmitsSpanFamilies(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), "hetpapid_spans_") {
		t.Error("span families exported without an attached recorder")
	}
}
