package telemetry

import (
	"strings"
	"testing"

	"hetpapi/internal/scenario"
)

func collectorSpec() scenario.Spec {
	return scenario.Spec{
		Name:    "collector-test",
		Machine: "homogeneous",
		TickSec: 0.01,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", Seconds: 0.2, CPUs: []int{0}},
		},
	}
}

// TestCollectorIngestsScenario runs a small scenario with the collector
// hook attached and checks the store fills with the expected series
// shapes: per-CPU frequency under the trace column names, the machine
// scalars, and one counter series per CPU/core-type/kind.
func TestCollectorIngestsScenario(t *testing.T) {
	store := NewStore(Config{Capacity: 1024})
	col := NewCollector(store, "mach", 1)
	spec := collectorSpec()
	spec.StepHooks = []scenario.StepHook{col.Hook()}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("scenario did not complete")
	}
	if col.Ticks() == 0 {
		t.Fatal("collector saw no ticks")
	}

	names := store.SeriesOf("mach")
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"cpu0_mhz", "temp_c", "energy_j", "power_w", "wall_w"} {
		if !have[want] {
			t.Errorf("missing series %q (have %v)", want, names)
		}
	}
	counters := 0
	for _, n := range names {
		if _, _, _, ok := parseCounterSeries(n); ok {
			counters++
		}
	}
	if counters == 0 {
		t.Fatalf("no counter series ingested; have %v", names)
	}

	// Counters are cumulative: the instruction series must be monotonic
	// and end positive on the busy CPU.
	pts, ok := store.Snapshot(Key{"mach", CounterSeriesName(0, "core", "instructions")})
	if !ok {
		// Core type name depends on the machine model; find any
		// instructions series instead.
		for _, n := range names {
			if strings.HasSuffix(n, "/instructions") {
				pts, _ = store.Snapshot(Key{"mach", n})
				break
			}
		}
	}
	if len(pts) == 0 {
		t.Fatal("no instruction counter points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].TimeSec <= pts[i-1].TimeSec {
			t.Fatalf("instruction series not monotonic at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}

	// Self-overhead gauges must be live.
	if col.IngestSec() <= 0 || col.OverheadPerTickSec() <= 0 {
		t.Fatalf("overhead gauges dead: ingest=%g per-tick=%g", col.IngestSec(), col.OverheadPerTickSec())
	}
	if r := col.OverheadRatio(); r <= 0 || r > 1 {
		t.Fatalf("overhead ratio %g outside (0,1]", r)
	}
	if col.SimSec() <= 0 {
		t.Fatalf("sim coverage %g", col.SimSec())
	}
}

// TestCollectorExportsMeasureSeries attaches a measurement probe to the
// scenario and checks the collector streams the probe's per-event values
// as measure/<event>/<field> series and the graceful-degradation tallies
// as degradation/<counter> series.
func TestCollectorExportsMeasureSeries(t *testing.T) {
	store := NewStore(Config{Capacity: 1024})
	col := NewCollector(store, "mach", 1)
	spec := collectorSpec()
	spec.Measure = &scenario.MeasureSpec{
		Workload: 0,
		Events:   []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
	}
	spec.StepHooks = []scenario.StepHook{col.Hook()}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("scenario did not complete")
	}
	for _, ev := range spec.Measure.Events {
		for _, field := range []string{"final", "error_bound"} {
			k := Key{"mach", MeasureSeriesName(ev, field)}
			pts, ok := store.Snapshot(k)
			if !ok || len(pts) == 0 {
				t.Fatalf("missing measure series %s (have %v)", k, store.SeriesOf("mach"))
			}
			if field == "final" {
				if last := pts[len(pts)-1].Value; last <= 0 {
					t.Errorf("%s final value %g not positive", ev, last)
				}
				for i := 1; i < len(pts); i++ {
					if pts[i].Value < pts[i-1].Value {
						t.Errorf("%s final series not monotonic at %d: %g -> %g",
							ev, i, pts[i-1].Value, pts[i].Value)
					}
				}
			}
		}
	}
	for _, ctr := range []string{
		"busy_retries", "deferred_starts", "multiplex_fallback",
		"hotplug_rebuilds", "stale_reads", "degraded_reads",
	} {
		if _, ok := store.Snapshot(Key{"mach", DegradationSeriesName(ctr)}); !ok {
			t.Errorf("missing degradation series %q", ctr)
		}
	}
}

// TestCollectorNextRunKeepsTimeMonotonic checks loop-mode rollover: the
// second run's samples land after the first run's on the same time axis.
func TestCollectorNextRunKeepsTimeMonotonic(t *testing.T) {
	store := NewStore(Config{Capacity: 4096})
	col := NewCollector(store, "mach", 1)
	for run := 0; run < 2; run++ {
		spec := collectorSpec()
		spec.StepHooks = []scenario.StepHook{col.Hook()}
		if _, err := scenario.Run(spec); err != nil {
			t.Fatal(err)
		}
		col.NextRun()
	}
	if col.Runs() != 2 {
		t.Fatalf("runs = %d", col.Runs())
	}
	pts, _ := store.Snapshot(Key{"mach", "power_w"})
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeSec <= pts[i-1].TimeSec {
			t.Fatalf("time axis not monotonic across runs at %d: %g -> %g",
				i, pts[i-1].TimeSec, pts[i].TimeSec)
		}
	}
}

// TestCollectorEveryTicks checks tick subsampling: every=4 stores a
// quarter of the samples but counts every tick in the gauges.
func TestCollectorEveryTicks(t *testing.T) {
	dense := NewStore(Config{})
	sparse := NewStore(Config{})
	for _, c := range []struct {
		store *Store
		every int
	}{{dense, 1}, {sparse, 4}} {
		col := NewCollector(c.store, "mach", c.every)
		spec := collectorSpec()
		spec.StepHooks = []scenario.StepHook{col.Hook()}
		if _, err := scenario.Run(spec); err != nil {
			t.Fatal(err)
		}
	}
	d := dense.Len(Key{"mach", "power_w"})
	s := sparse.Len(Key{"mach", "power_w"})
	if s == 0 || d < 3*s {
		t.Fatalf("subsampling ineffective: dense=%d sparse=%d", d, s)
	}
}
