package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hetpapi/internal/power"
	"hetpapi/internal/scenario"
	"hetpapi/internal/trace"
)

// Collector bridges one scenario run (one simulated machine) into the
// store: its Hook samples the post-tick machine state — per-CPU frequency
// under the trace CSV column names, package power/energy/temperature, and
// every system-wide counter the harness keeps open as one series per
// core/event/PMU — and its gauges account for the collector's own cost,
// wall-clock time spent ingesting versus the whole run loop, per Diamond
// et al.'s warning that a monitoring service must measure itself.
//
// A Collector belongs to one collection goroutine: the hook is called
// from the scenario run loop only. The gauge accessors are safe to call
// concurrently from HTTP handlers.
type Collector struct {
	store   *Store
	machine string
	every   int64

	ticks    atomic.Int64
	runs     atomic.Int64
	ingestNs atomic.Int64
	spanNs   atomic.Int64
	simNs    atomic.Int64 // simulated time covered, in ns for atomicity

	startOnce sync.Once
	startWall time.Time

	// Run-loop state, touched only from the hook goroutine.
	baseSec  float64 // time-axis offset accumulated over completed runs
	lastSec  float64 // last relative sim time seen this run
	colNames []string
	fdNames  map[int]string
}

// NewCollector builds a collector feeding the store under the given
// machine id, sampling every everyTicks simulator ticks (minimum 1; the
// overhead gauges still count every tick).
func NewCollector(store *Store, machine string, everyTicks int) *Collector {
	if everyTicks < 1 {
		everyTicks = 1
	}
	return &Collector{
		store:   store,
		machine: machine,
		every:   int64(everyTicks),
		fdNames: map[int]string{},
	}
}

// Machine returns the machine id series are filed under.
func (c *Collector) Machine() string { return c.machine }

// Hook returns the scenario step hook that performs ingestion. Register
// it in Spec.StepHooks.
func (c *Collector) Hook() scenario.StepHook {
	return func(ctx *scenario.Context) {
		start := time.Now()
		c.startOnce.Do(func() { c.startWall = start })
		n := c.ticks.Load()
		now := ctx.Sim.Now() - ctx.StartSec
		c.lastSec = now
		c.simNs.Store(int64((c.baseSec + now) * 1e9))
		if n%c.every == 0 {
			c.sample(ctx, c.baseSec+now)
		}
		c.ingestNs.Add(int64(time.Since(start)))
		c.spanNs.Store(int64(time.Since(c.startWall)))
		// Publish the tick count last: observers that see Ticks > 0 are
		// then guaranteed a non-zero wall span and ingest time, so the
		// overhead gauges never read as zero mid-tick.
		c.ticks.Add(1)
	}
}

func (c *Collector) sample(ctx *scenario.Context, t float64) {
	s := ctx.Sim
	ncpu := s.HW.NumCPUs()
	if c.colNames == nil {
		c.colNames = trace.ColumnNames(ncpu)
	}
	for cpu := 0; cpu < ncpu; cpu++ {
		c.store.Append(Key{c.machine, c.colNames[1+cpu]}, t, s.CurFreqMHz(cpu))
	}
	c.store.Append(Key{c.machine, "temp_c"}, t, s.Thermal.TempC())
	c.store.Append(Key{c.machine, "energy_j"}, t, s.Power.EnergyJ(power.DomainPkg))
	c.store.Append(Key{c.machine, "power_w"}, t, s.Power.PkgPowerW())
	c.store.Append(Key{c.machine, "wall_w"}, t, s.Power.WallPowerW())
	for _, we := range ctx.Wide {
		if we.Dead {
			continue // CPU hotplugged off; the series resumes on reopen
		}
		count, err := s.Kernel.Read(we.FD)
		if err != nil {
			continue
		}
		name, ok := c.fdNames[we.FD]
		if !ok {
			name = CounterSeriesName(we.CPU, we.TypeName, we.Kind.String())
			c.fdNames[we.FD] = name
		}
		c.store.Append(Key{c.machine, name}, t, float64(count.Value))
	}
	if m := ctx.Measure; m != nil && len(m.LastValues) > 0 {
		for i, v := range m.LastValues {
			c.store.Append(Key{c.machine, MeasureSeriesName(m.Names[i], "final")}, t, float64(v.Final))
			c.store.Append(Key{c.machine, MeasureSeriesName(m.Names[i], "error_bound")}, t, float64(v.ErrorBound))
		}
		r := m.Set.Degradations()
		for _, g := range [...]struct {
			name string
			v    int
		}{
			{"busy_retries", r.BusyRetries},
			{"deferred_starts", r.DeferredStarts},
			{"multiplex_fallback", r.MultiplexFallback},
			{"hotplug_rebuilds", r.HotplugRebuilds},
			{"stale_reads", r.StaleReads},
			{"degraded_reads", r.DegradedReads},
		} {
			c.store.Append(Key{c.machine, DegradationSeriesName(g.name)}, t, float64(g.v))
		}
	}
}

// NextRun rolls the collector over to a fresh scenario run: the time axis
// keeps advancing monotonically (the new run's t=0 lands after the last
// sample) and the run counter increments. Call between loop iterations,
// from the collection goroutine.
func (c *Collector) NextRun() {
	c.baseSec += c.lastSec
	c.lastSec = 0
	// Wide-event fds are per-run; forget the name cache.
	c.fdNames = map[int]string{}
	c.runs.Add(1)
}

// Ticks returns the number of simulator ticks observed.
func (c *Collector) Ticks() int64 { return c.ticks.Load() }

// Runs returns the number of completed scenario runs.
func (c *Collector) Runs() int64 { return c.runs.Load() }

// SimSec returns the simulated time covered across all runs.
func (c *Collector) SimSec() float64 { return float64(c.simNs.Load()) / 1e9 }

// IngestSec returns the wall-clock time spent inside the hook.
func (c *Collector) IngestSec() float64 { return float64(c.ingestNs.Load()) / 1e9 }

// WallSec returns the wall-clock span from the first hook invocation to
// the most recent one — the run loop's duration, simulation included.
func (c *Collector) WallSec() float64 { return float64(c.spanNs.Load()) / 1e9 }

// OverheadPerTickSec returns the mean wall-clock ingestion cost per
// simulator tick.
func (c *Collector) OverheadPerTickSec() float64 {
	n := c.ticks.Load()
	if n == 0 {
		return 0
	}
	return c.IngestSec() / float64(n)
}

// OverheadRatio returns ingestion wall time as a fraction of the whole
// run loop's wall time (0 when nothing has run; NaN-free).
func (c *Collector) OverheadRatio() float64 {
	span := c.WallSec()
	if span <= 0 {
		return 0
	}
	r := c.IngestSec() / span
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// Info assembles the MachineInfo gauges (scenario/model/running are the
// registry's to fill).
func (c *Collector) Info() MachineInfo {
	return MachineInfo{
		Name:               c.machine,
		Runs:               c.runs.Load(),
		Ticks:              c.ticks.Load(),
		SimSec:             c.SimSec(),
		IngestSec:          c.IngestSec(),
		WallSec:            c.WallSec(),
		OverheadPerTickSec: c.OverheadPerTickSec(),
		OverheadRatio:      c.OverheadRatio(),
	}
}
