package telemetry

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRungDownsample feeds an arbitrary byte-derived sample stream into
// a small store and checks the downsampling invariants on every rung:
// ingest never panics, non-finite samples are rejected exactly, bucket
// starts are width-aligned and strictly increasing, every bucket is
// internally consistent (N > 0, Min <= Max, Min <= Mean <= Max), and
// the coarsest rung that never wrapped accounts for every accepted
// sample.
func FuzzRungDownsample(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})
	// Two in-order samples, then a time jump backwards.
	seed := make([]byte, 0, 48)
	for _, v := range []float64{1, 10, 2, 20, 0.5, 30} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		seed = append(seed, b[:]...)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewStore(Config{Capacity: 32, RungCapacity: 16, Shards: 1})
		k := Key{Machine: "m", Series: "s"}
		accepted := int64(0)
		for off := 0; off+16 <= len(data) && off < 16*512; off += 16 {
			ts := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
			// Bound the time axis so bucket arithmetic stays exact; the
			// rejection path still sees raw NaN/Inf inputs.
			if ts > 1e12 || ts < -1e12 {
				ts = math.Mod(ts, 1e12)
			}
			st.Append(k, ts, v)
			if !math.IsNaN(ts) && !math.IsInf(ts, 0) && !math.IsNaN(v) && !math.IsInf(v, 0) {
				accepted++
			}
		}
		if got := st.Rejected(); got != int64(0) && accepted+got == 0 {
			t.Fatalf("rejected %d with no inputs", got)
		}
		for _, r := range Rungs() {
			pts, ok := st.RungRange(k, r, -1, -1)
			if accepted == 0 {
				if ok && len(pts) > 0 {
					t.Fatalf("rung %v has %d buckets with no accepted samples", r, len(pts))
				}
				continue
			}
			var total int64
			for i, p := range pts {
				if r != RungRaw {
					if want := math.Floor(p.TimeSec/r.Width()) * r.Width(); p.TimeSec != want {
						t.Fatalf("rung %v bucket %g not aligned to %g", r, p.TimeSec, r.Width())
					}
				}
				if i > 0 && p.TimeSec <= pts[i-1].TimeSec {
					t.Fatalf("rung %v buckets not strictly increasing: %g then %g", r, pts[i-1].TimeSec, p.TimeSec)
				}
				b := p.Agg
				if b.N <= 0 || b.Min > b.Max {
					t.Fatalf("rung %v bucket %+v inconsistent", r, b)
				}
				if mean := b.Mean(); mean < b.Min-1e-9*math.Abs(b.Min) || mean > b.Max+1e-9*math.Abs(b.Max) {
					t.Fatalf("rung %v bucket mean %g outside [%g, %g]", r, mean, b.Min, b.Max)
				}
				if math.IsNaN(b.Sum) || math.IsInf(b.Sum, 0) {
					t.Fatalf("rung %v bucket carries non-finite sum %g", r, b.Sum)
				}
				total += b.N
			}
			// A rung only loses samples by ring eviction: with 16 closed
			// buckets retained, a rung that produced fewer buckets than
			// the ring holds must cover every accepted sample.
			if r != RungRaw && len(pts) < 16 && total != accepted {
				t.Fatalf("rung %v covers %d samples, accepted %d (no eviction happened)", r, total, accepted)
			}
		}
	})
}
