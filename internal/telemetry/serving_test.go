package telemetry_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetpapi/internal/spantrace"
	"hetpapi/internal/telemetry"
	"hetpapi/internal/telemetry/client"
	"hetpapi/internal/telemetry/httpobs"
)

// statusOf fetches and decodes /status.
func statusOf(t *testing.T, ts *httptest.Server) httpobs.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /status = %d", resp.StatusCode)
	}
	var st httpobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /status: %v", err)
	}
	return st
}

func findEndpoint(t *testing.T, st httpobs.Status, name string) httpobs.EndpointStatus {
	t.Helper()
	for _, es := range st.Endpoints {
		if es.Endpoint == name {
			return es
		}
	}
	t.Fatalf("endpoint %q missing from /status: %+v", name, st.Endpoints)
	return httpobs.EndpointStatus{}
}

// TestServingTimeout503Counted drives a request into a mounted handler
// that outlives the request timeout: the client sees the TimeoutHandler's
// JSON 503 and the serving metrics count it against the endpoint.
func TestServingTimeout503Counted(t *testing.T) {
	_, srv := seededServer(t, 30*time.Millisecond)
	release := make(chan struct{})
	srv.Mount("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer close(release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatalf("GET /slow: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /slow = %d, want 503", resp.StatusCode)
	}
	var apiErr telemetry.APIError
	if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Status != 503 {
		t.Fatalf("timeout body %q not the JSON error shape (err %v)", body, err)
	}

	st := statusOf(t, ts)
	es := findEndpoint(t, st, "/slow")
	if es.Requests != 1 || es.StatusClass["5xx"] != 1 || es.Errors != 1 {
		t.Fatalf("/slow accounting after timeout: %+v", es)
	}
	if st.Errors < 1 {
		t.Fatalf("global error count %d after timeout", st.Errors)
	}
}

// TestServingErrorShapeUnified checks that the fallback 404, the
// method-guard 405 and a handler 400 all answer with the shared JSON
// error shape and count into the serving metrics.
func TestServingErrorShapeUnified(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/no/such/path", 404},
		{"POST", "/health", 405},
		{"DELETE", "/query", 405},
		{"GET", "/query?machine=mach", 400},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", c.method, c.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Fatalf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
		}
		var apiErr telemetry.APIError
		if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Status != c.wantStatus || apiErr.Error == "" {
			t.Fatalf("%s %s body %q is not the unified error shape (err %v)", c.method, c.path, body, err)
		}
	}
	if resp, err := http.Get(ts.URL + "/no/such/path"); err == nil {
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("404 content type %q", ct)
		}
		resp.Body.Close()
	}

	st := statusOf(t, ts)
	// The unknown paths (2 of them now) land in the "other" bucket; the
	// 405s are attributed to their endpoint's path; the 400 to /query.
	other := findEndpoint(t, st, httpobs.OtherEndpoint)
	if other.Requests != 2 || other.Errors != 2 || other.StatusClass["4xx"] != 2 {
		t.Fatalf("other bucket: %+v", other)
	}
	if es := findEndpoint(t, st, "/health"); es.Errors != 1 || es.StatusClass["4xx"] != 1 {
		t.Fatalf("/health 405 accounting: %+v", es)
	}
	if es := findEndpoint(t, st, "/query"); es.Errors != 2 {
		t.Fatalf("/query 405+400 accounting: %+v", es)
	}
}

// TestStatusDeterministicCounts drives a fixed request sequence and
// checks the count-level view of /status is exactly determined by it
// (latency fields ride the wall clock; everything else must not).
func TestStatusDeterministicCounts(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	paths := []string{
		"/health", "/health", "/series?machine=mach", "/query?machine=mach&series=power_w",
		"/query?machine=nope&series=power_w", "/missing", "/metrics",
	}
	for _, p := range paths {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	want := map[string]struct {
		requests, errors uint64
		class            string
	}{
		"/health":             {2, 0, "2xx"},
		"/series":             {1, 0, "2xx"},
		"/query":              {2, 1, ""},
		httpobs.OtherEndpoint: {1, 1, "4xx"},
		"/metrics":            {1, 0, "2xx"},
	}
	for round := 0; round < 2; round++ {
		st := statusOf(t, ts)
		for name, w := range want {
			es := findEndpoint(t, st, name)
			if es.Requests != w.requests || es.Errors != w.errors {
				t.Fatalf("round %d: %s = %d req / %d err, want %d / %d",
					round, name, es.Requests, es.Errors, w.requests, w.errors)
			}
			if w.class != "" && es.StatusClass[w.class] != w.requests {
				t.Fatalf("round %d: %s classes %v", round, name, es.StatusClass)
			}
		}
		// /status itself is counted from the second fetch onward.
		if round == 1 {
			if es := findEndpoint(t, st, "/status"); es.Requests != 1 {
				t.Fatalf("/status self-accounting: %+v", es)
			}
		}
		if st.SlowDropped != 0 {
			t.Fatalf("round %d: slow drops from a short sequence: %d", round, st.SlowDropped)
		}
	}
}

// TestServingGzipHit checks the gzip-negotiated path increments the
// endpoint's gzip-hit counter.
func TestServingGzipHit(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/series?machine=mach", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("GET /series: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("response not gzip-encoded")
	}

	st := statusOf(t, ts)
	if es := findEndpoint(t, st, "/series"); es.GzipHits != 1 {
		t.Fatalf("/series gzip hits: %+v", es)
	}
}

// TestHTTPTraceEndpoint attaches a serving-path tracer and checks the
// per-request spans come back through /trace?machine=http.
func TestHTTPTraceEndpoint(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Before attachment, /trace?machine=http is a JSON 404.
	resp, err := http.Get(ts.URL + "/trace?machine=http")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("trace before attach = %d, want 404", resp.StatusCode)
	}

	rec := spantrace.New(spantrace.Config{})
	rec.Enable()
	srv.AttachHTTPTracer(rec)
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/health")
		if err != nil {
			t.Fatalf("GET /health: %v", err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	resp, err = http.Get(ts.URL + "/trace?machine=http")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace after attach = %d: %s", resp.StatusCode, body)
	}
	text := string(body)
	if !strings.Contains(text, `"http./health"`) || !strings.Contains(text, "http.serve") {
		t.Fatalf("trace export missing serving spans: %.200s", text)
	}
	var export map[string]any
	if err := json.Unmarshal(body, &export); err != nil {
		t.Fatalf("trace export not JSON: %v", err)
	}
}

// TestServingMetricsExposition checks the hetpapid_http_* families ride
// the /metrics exposition.
func TestServingMetricsExposition(t *testing.T) {
	_, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`hetpapid_http_requests_total{endpoint="/health",class="2xx"} 1`,
		"# TYPE hetpapid_http_latency_ms gauge",
		`hetpapid_http_slo_attainment_pct{endpoint="/health"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}

	// The typed client decodes /status too.
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatalf("client status: %v", err)
	}
	if st.Requests < 2 {
		t.Fatalf("client status requests = %d", st.Requests)
	}
}

// TestServingConcurrentScrapeVsIngest hammers ingestion and the serving
// surface at once; the race detector and the final count checks are the
// assertions.
func TestServingConcurrentScrapeVsIngest(t *testing.T) {
	store, srv := seededServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, readers, iters = 4, 4, 50
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			key := telemetry.Key{Machine: "mach", Series: "power_w"}
			for i := 0; i < iters; i++ {
				store.Append(key, float64(100+wr*iters+i), 40)
			}
		}(wr)
	}
	paths := []string{"/status", "/metrics", "/query?machine=mach&series=power_w", "/series?machine=mach"}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + paths[(rd+i)%len(paths)])
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(rd)
	}
	wg.Wait()

	// The /status request reporting is recorded only after its own
	// handler returns, so the snapshot covers exactly the load above.
	st := statusOf(t, ts)
	if st.Requests != readers*iters {
		t.Fatalf("requests = %d, want %d", st.Requests, readers*iters)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d under concurrent load", st.Errors)
	}
}
