// biglittle explores the paper's ARM big.LITTLE result (Figures 3 and 4)
// on the simulated OrangePi 800: the two Cortex-A72 big cores ramp to
// 1.8 GHz, cross the 85 degC passive trip within seconds and throttle so
// hard that the four Cortex-A53 LITTLE cores finish HPL faster.
//
// Run with: go run ./examples/biglittle
package main

import (
	"fmt"
	"log"

	"hetpapi/internal/exp"
	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
	"hetpapi/internal/stats"
	"hetpapi/internal/workload"
)

func main() {
	// First, a live view of the collapse: run HPL on the two big cores
	// through the scenario harness and print the 1 Hz trace the paper's
	// Figure 3 plots. The harness audits every tick against the standard
	// invariant set (counter monotonicity, energy conservation, DVFS
	// envelope, thermal bounds, ...) while it drives the machine.
	bigs := hw.OrangePi800().CPUsOfType("big")
	res, err := scenario.Run(scenario.Spec{
		Name:            "orangepi-big-hpl",
		Machine:         "orangepi800",
		Seed:            1,
		MaxSeconds:      300,
		SamplePeriodSec: 1,
		Workloads: []scenario.WorkloadSpec{{
			Kind: scenario.WorkloadHPL, Name: "hpl-big", CPUs: bigs,
			N: 8192, NB: 128, Strategy: workload.OpenBLASArm(), Seed: 1,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HPL on the 2 big cores (watch the thermal collapse):")
	fmt.Println("  t(s)  big MHz  LITTLE MHz  temp(C)  wall(W)")
	for i, smp := range res.Samples {
		if i%4 != 0 && i != len(res.Samples)-1 {
			continue // print every 4th second
		}
		bigMHz := stats.Mean([]float64{smp.FreqMHz[4], smp.FreqMHz[5]})
		littleMHz := stats.Mean(smp.FreqMHz[:4])
		fmt.Printf("  %4.0f  %7.0f  %10.0f  %7.1f  %6.2f\n",
			smp.TimeSec, bigMHz, littleMHz, smp.TempC, smp.WallW)
	}
	fmt.Printf("(%.2f Gflops; every tick audited, %d invariant violations)\n",
		res.Workloads[0].Gflops, len(res.Violations))

	// Then the Figure 4 sweep: Gflops as cores are added.
	fmt.Println("\nOrangePi HPL performance as more cores are added (Figure 4):")
	cfg := exp.Quick()
	cfg.ArmN = 8192
	f4, err := exp.Figure4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f4)
	two := f4.Row("2 big")
	four := f4.Row("4 LITTLE")
	fmt.Printf("\n=> 4 LITTLE cores (%.2f Gflops) beat 2 thermally throttled big cores (%.2f Gflops)\n",
		four.Gflops, two.Gflops)
}
