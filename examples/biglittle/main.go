// biglittle explores the paper's ARM big.LITTLE result (Figures 3 and 4)
// on the simulated OrangePi 800: the two Cortex-A72 big cores ramp to
// 1.8 GHz, cross the 85 degC passive trip within seconds and throttle so
// hard that the four Cortex-A53 LITTLE cores finish HPL faster.
//
// Run with: go run ./examples/biglittle
package main

import (
	"fmt"
	"log"

	"hetpapi/internal/exp"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/stats"
	"hetpapi/internal/trace"
	"hetpapi/internal/workload"
)

func main() {
	// First, a live view of the collapse: run HPL on the two big cores and
	// print the 1 Hz trace the paper's Figure 3 plots.
	m := hw.OrangePi800()
	s := sim.New(m, sim.DefaultConfig())
	h, err := workload.NewHPL(workload.HPLConfig{
		N: 8192, NB: 128, Threads: 2, Strategy: workload.OpenBLASArm(), Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	bigs := m.CPUsOfType("big")
	for i, task := range h.Threads() {
		s.Spawn(task, hw.NewCPUSet(bigs[i]))
	}

	fmt.Println("HPL on the 2 big cores (watch the thermal collapse):")
	fmt.Println("  t(s)  big MHz  LITTLE MHz  temp(C)  wall(W)")
	rec := trace.NewRecorder(s, 1)
	rec.RunUntil(h.Done, 300)
	for i, smp := range rec.Samples() {
		if i%4 != 0 && i != len(rec.Samples())-1 {
			continue // print every 4th second
		}
		bigMHz := stats.Mean([]float64{smp.FreqMHz[4], smp.FreqMHz[5]})
		littleMHz := stats.Mean(smp.FreqMHz[:4])
		fmt.Printf("  %4.0f  %7.0f  %10.0f  %7.1f  %6.2f\n",
			smp.TimeSec, bigMHz, littleMHz, smp.TempC, smp.WallW)
	}

	// Then the Figure 4 sweep: Gflops as cores are added.
	fmt.Println("\nOrangePi HPL performance as more cores are added (Figure 4):")
	cfg := exp.Quick()
	cfg.ArmN = 8192
	f4, err := exp.Figure4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f4)
	two := f4.Row("2 big")
	four := f4.Row("4 LITTLE")
	fmt.Printf("\n=> 4 LITTLE cores (%.2f Gflops) beat 2 thermally throttled big cores (%.2f Gflops)\n",
		four.Gflops, two.Gflops)
}
