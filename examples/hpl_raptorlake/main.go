// hpl_raptorlake reproduces the paper's motivating experiment at reduced
// scale: HPL built against OpenBLAS (hybrid-oblivious) versus Intel's
// optimized HPL (hybrid-aware) on the simulated i7-13700, across the three
// core selections of Table II. It shows the central result: enabling the
// E-cores HURTS the hybrid-oblivious build and HELPS the hybrid-aware one.
//
// Run with: go run ./examples/hpl_raptorlake [-n 19200]
package main

import (
	"flag"
	"fmt"
	"log"

	"hetpapi/internal/exp"
	"hetpapi/internal/scenario"
	"hetpapi/internal/workload"
)

func main() {
	n := flag.Int("n", 19200, "HPL problem size (paper: 57024)")
	flag.Parse()

	cfg := exp.Quick()
	cfg.N = *n
	cfg.NB = 192

	// One fully audited run first, through the scenario harness: HPL
	// pinned one-thread-per-P-core (the SMT-0 logical CPUs), with every
	// tick checked against the standard invariant set and the run
	// condensed into the same behavior digest the golden regression tests
	// pin.
	fmt.Printf("HPL N=%d NB=%d on the simulated Raptor Lake (65 W PL1 / 219 W PL2)\n\n", cfg.N, cfg.NB)
	res, err := scenario.Run(scenario.Spec{
		Name:            "p-cores-audited",
		Machine:         "raptorlake",
		Seed:            cfg.Seed,
		MaxSeconds:      4 * 3600,
		SamplePeriodSec: 1,
		Workloads: []scenario.WorkloadSpec{{
			Kind: scenario.WorkloadHPL, Name: "hpl",
			CPUs: []int{0, 2, 4, 6, 8, 10, 12, 14},
			N:    cfg.N, NB: cfg.NB, Strategy: workload.OpenBLASx86(), Seed: cfg.Seed,
		}},
		VerifyDeterminism: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P-only audit run: %.1f Gflops in %.1f s, %.0f J, deterministic=%v, digest %s\n\n",
		res.Workloads[0].Gflops, res.ElapsedSec, res.EnergyJ, res.DeterminismVerified, res.Digest[:12])

	res2, err := exp.TableII(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res2)

	fmt.Println("\nwhy: per-core-type counters from the all-core runs (Table III)")
	t3, err := exp.TableIII(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t3)

	fmt.Println("\nThe", workload.OpenBLASx86().Name, "build splits work equally and waits at")
	fmt.Println("per-panel barriers, so its P-cores spend their time spin-waiting on E-core")
	fmt.Println("stragglers (the inflated P instruction share), while", workload.IntelMKL().Name)
	fmt.Println("balances work against each core's throughput and keeps the streaming,")
	fmt.Println("LLC-hostile updates off the P-cores' cache.")
}
