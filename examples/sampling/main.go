// sampling builds a statistical execution profile of a phased workload
// on the simulated hybrid machine — the measurement mode the paper
// contrasts with PAPI calipers. On a hybrid CPU one sampled event per
// core PMU is required (a cpu_core sample stream never fires on
// E-cores); the profile.Collector opens one ring per core-type PMU per
// task and attributes every overflow to (core type, phase, CPU, DVFS
// frequency), so the merged profile answers "which core type ran which
// phase of the program, and for how long".
//
// The example ends with a P-vs-E flamegraph walkthrough: it writes the
// profile as folded stacks (sampling.folded) and as a gzipped pprof
// profile.proto (sampling.pb.gz). Turn them into pictures with:
//
//	flamegraph.pl sampling.folded > sampling.svg
//	go tool pprof -http=:8080 sampling.pb.gz
//
// In the flamegraph every root frame is a core type: the P-core tower
// splits into the workload's phases while the E-core tower shows what
// ran beside it — exactly the split a single-PMU profiler would miss.
//
// Run with: go run ./examples/sampling
package main

import (
	"fmt"
	"log"
	"os"

	"hetpapi/internal/hw"
	"hetpapi/internal/profile"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Sched.Seed = 12
	machine := sim.New(hw.RaptorLake(), cfg)

	// A phased app pinned to a P-core and a background loop pinned to an
	// E-core: the profile must attribute them to different PMUs, and the
	// app's samples to its current phase at each overflow.
	app := workload.NewSequence("app",
		workload.NewInstructionLoop("init", 1e6, 400),
		workload.NewInstructionLoop("compute", 1e6, 2600),
		workload.NewInstructionLoop("reduce", 1e6, 600),
	)
	bg := workload.NewInstructionLoop("background", 1e6, 1800)
	p1 := machine.Spawn(app, hw.NewCPUSet(0))
	p2 := machine.Spawn(bg, hw.NewCPUSet(16))

	col := profile.NewCollector(machine, profile.Config{Period: 1_000_000})
	col.Attach(p1.PID)
	col.Attach(p2.PID)
	removeHook := machine.AddStepHook(col.SimHook())
	defer removeHook()

	if !machine.RunUntil(func() bool { return app.Done() && bg.Done() }, 60) {
		log.Fatal("workloads did not finish")
	}
	prof := col.Finish()
	col.Close()

	fmt.Printf("profiled %.2fs: %d samples (period %d cycles), %d lost, error bound ±%.1f%%\n\n",
		prof.DurationSec, prof.Emitted, prof.Period, prof.Lost, 100*prof.ErrorBound())

	// Core-type shares from frequency-converted busy time — the hybrid
	// answer a cycles total alone cannot give.
	shares := prof.Shares()
	for _, ct := range prof.CoreTypes() {
		fmt.Printf("%-8s %5.1f%% of busy time\n", ct, 100*shares[ct])
		for _, row := range prof.Top(4, ct) {
			phase := row.Key.Phase
			if phase == "" {
				phase = "(no phase)"
			}
			fmt.Printf("  %-12s cpu%-3d %6d samples %8.1f ms busy\n",
				phase, row.Key.CPU, row.Samples, row.BusySec*1e3)
		}
	}
	fmt.Printf("\nphase shares: ")
	for phase, share := range prof.PhaseShares() {
		if phase == "" {
			phase = "(no phase)"
		}
		fmt.Printf("%s %.1f%%  ", phase, 100*share)
	}
	fmt.Println()

	// Export both flamegraph inputs.
	folded, err := os.Create("sampling.folded")
	must(err)
	must(profile.WriteFolded(folded, prof))
	must(folded.Close())
	pb, err := os.Create("sampling.pb.gz")
	must(err)
	must(profile.WritePprof(pb, prof))
	must(pb.Close())

	fmt.Println("\nwrote sampling.folded and sampling.pb.gz; next steps:")
	fmt.Println("  flamegraph.pl sampling.folded > sampling.svg   # P and E towers side by side")
	fmt.Println("  go tool pprof -top sampling.pb.gz              # busy-seconds ranked frames")
	fmt.Println("(a single-PMU profiler would silently miss every E-core sample)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
