// sampling builds a statistical execution profile of a migrating workload
// on the simulated hybrid machine — the measurement mode the paper
// contrasts with PAPI calipers. On a hybrid CPU one sampled event per core
// PMU is required (a cpu_core sample stream never fires on E-cores);
// merging the two streams yields a timeline of which core type executed
// the program when.
//
// Run with: go run ./examples/sampling
package main

import (
	"fmt"
	"log"
	"strings"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.TickSec = 0.0001
	cfg.Sched.MigrateToEffProb = 0.10
	cfg.Sched.MigrateToPerfProb = 0.18
	cfg.Sched.BalancePeriodSec = 0.001
	cfg.Sched.Seed = 12
	machine := sim.New(hw.RaptorLake(), cfg)
	papi, err := core.Init(machine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	loop := workload.NewInstructionLoop("profiled", 1e6, 5000)
	proc := machine.Spawn(loop, hw.AllCPUs(machine.HW))

	es := papi.CreateEventSet()
	must(es.Attach(proc.PID))
	must(es.AddPreset(core.PresetTotIns)) // expands to one native per PMU
	must(es.SetSamplePeriod(0, 2_000_000))
	must(es.Start())
	if !machine.RunUntil(loop.Done, 60) {
		log.Fatal("workload did not finish")
	}
	samples, lost, err := es.Samples()
	if err != nil {
		log.Fatal(err)
	}
	vals, _ := es.Stop()
	defer es.Cleanup()

	pType := machine.HW.TypeByName("P-core").PMU.PerfType
	fmt.Printf("profiled %d instructions; %d samples (period 2M), %d lost\n\n",
		vals[0], len(samples), lost)

	// Timeline: bucket samples into 20 equal time slices, render P vs E
	// occupancy per slice.
	if len(samples) == 0 {
		log.Fatal("no samples")
	}
	end := samples[len(samples)-1].TimeSec
	const buckets = 20
	var p, e [buckets]int
	for _, smp := range samples {
		b := int(smp.TimeSec / end * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		if smp.PMUType == pType {
			p[b]++
		} else {
			e[b]++
		}
	}
	fmt.Println("execution timeline (each row is 1/20 of the run; # = P-core samples, . = E-core):")
	for b := 0; b < buckets; b++ {
		total := p[b] + e[b]
		if total == 0 {
			continue
		}
		const width = 60
		pw := p[b] * width / total
		fmt.Printf("  t%2d |%s%s| P %3d  E %3d\n",
			b, strings.Repeat("#", pw), strings.Repeat(".", width-pw), p[b], e[b])
	}

	var pTotal, eTotal int
	for b := range p {
		pTotal += p[b]
		eTotal += e[b]
	}
	fmt.Printf("\ncore-type residency by samples: P %.1f%%, E %.1f%%\n",
		100*float64(pTotal)/float64(pTotal+eTotal),
		100*float64(eTotal)/float64(pTotal+eTotal))
	fmt.Println("(a single-PMU profiler would silently miss every E-core sample)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
