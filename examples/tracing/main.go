// tracing records a cross-layer span trace of an HPL run on the
// big.LITTLE OrangePi 800 while a counter-steal fault holds the big
// cores' PMU, then walks through reading the result.
//
// The run pins two HPL threads to the Cortex-A72 big cores and
// measures one of them with a PAPI-style multi-PMU probe. At t=2s the
// NMI watchdog steals the big-core cycles counter for 1.5 simulated
// seconds, so the probe's readings degrade to time-scaled estimates
// until the release. At t=4.5s a sched_setaffinity injection migrates
// both threads down to the Cortex-A53 LITTLE cores — the cross-PMU
// migration that section IV of the paper exists to handle: the
// thread's events stop counting on the armv8_cortex_a72 PMU and the
// EventSet keeps measuring through the armv8_cortex_a53 group.
//
// The trace is exported as Chrome trace-event JSON — drop the file on
// ui.perfetto.dev to see the per-CPU exec spans, the migration
// instants on the sched track, the syscall traffic on the kernel
// track and the degradation events on the papi track — and the same
// file is then fed back through the analyzer for the text view
// printed below.
//
// Run with: go run ./examples/tracing [-o trace.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/spantrace/analyze"
	"hetpapi/internal/workload"
)

func main() {
	out := flag.String("o", "trace.json", "trace output file")
	flag.Parse()

	// One recorder covers the whole stack: handing it to the scenario
	// spec attaches it to the scheduler, the perf_event kernel, the
	// fault layer and the PAPI library for the duration of the run.
	rec := spantrace.New(spantrace.Config{TrackCapacity: 1 << 15})
	rec.Enable()

	res, err := scenario.Run(scenario.Spec{
		Name:            "tracing-example",
		Machine:         "orangepi800",
		Seed:            42,
		MaxSeconds:      20,
		SamplePeriodSec: 0.5,
		Workloads: []scenario.WorkloadSpec{{
			Kind: scenario.WorkloadHPL, Name: "hpl",
			// One thread per listed CPU: both start on the A72 big cores.
			// N is sized so the factorization is still mid-flight when the
			// t=4.5s migration lands, and finishes out on the LITTLE cores.
			CPUs: []int{4, 5},
			N:    6144, NB: 128, Strategy: workload.OpenBLASArm(), Seed: 1,
		}},
		Measure: &scenario.MeasureSpec{
			Workload: 0,
			Events:   []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
		},
		Injects: []scenario.Inject{
			// The watchdog grabs the big-core cycles counter mid-run.
			{AtSec: 2, Kind: scenario.InjectCounterSteal, Class: hw.Performance, DurSec: 1.5},
			// sched_setaffinity pushes both threads to the LITTLE cores.
			{AtSec: 4.5, Kind: scenario.InjectMigrate, Workload: 0, CPUs: []int{0, 1}},
		},
		Tracer: rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	snap := rec.Snapshot()
	if err := spantrace.WriteJSON(f, snap); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st := rec.Stats()
	fmt.Printf("ran %s for %.1fs simulated; wrote %s (%d events retained, %d dropped by ring wrap)\n",
		res.Name, res.ElapsedSec, *out, st.Retained, st.Dropped)
	fmt.Printf("open it in ui.perfetto.dev, or read the analyzer's view:\n\n")

	// Re-read the exported file exactly as `hetpapitrace analyze` would.
	g, err := os.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := analyze.Parse(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}
	rep := analyze.Analyze(tr)
	fmt.Print(rep.String())

	// Walk the migration timeline: each line of rep.Migrations is one
	// SchedIn on a different CPU than the pid's last, and the starred
	// (cross-core-type) moves are the ones that change which PMU is
	// counting the thread.
	cross := 0
	for _, m := range rep.Migrations {
		if m.CrossType() {
			cross++
		}
	}
	fmt.Printf("\nreading the migration timeline:\n")
	fmt.Printf("  %d migrations, %d of them crossing between big (A72, armv8_cortex_a72 PMU)\n",
		len(rep.Migrations), cross)
	fmt.Printf("  and LITTLE (A53, armv8_cortex_a53 PMU) — the t=4.5s sched_setaffinity\n")
	fmt.Printf("  injection moving both HPL threads down. On each starred line above, the\n")
	fmt.Printf("  thread's events stop counting on the source PMU and its multi-PMU\n")
	fmt.Printf("  EventSet keeps measuring via the destination PMU's event group; under\n")
	fmt.Printf("  legacy single-PMU PAPI those are the moments measurement silently stops.\n")
	fmt.Printf("\nreading the fault window:\n")
	fmt.Printf("  between t=2s and t=3.5s the faults track carries fault.watchdog-hold /\n")
	fmt.Printf("  fault.watchdog-release instants; on the papi track a papi.read.degraded\n")
	fmt.Printf("  instant marks where the probe's reads flip to time-scaled estimates, and\n")
	fmt.Printf("  papi.read.clean marks the recovery after the release.\n")
}
