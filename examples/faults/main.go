// faults demonstrates the fault-injection layer and the graceful
// degradation above it, end to end: the simulated kernel misbehaves the
// way real perf_event substrates do — the NMI watchdog steals the fixed
// cycles counter (EBUSY), another PMU user exhausts the counter budget
// (ENOSPC), a CPU hotplugs away mid-measurement (ENODEV) — and the
// PAPI-style core layer climbs its degradation ladder so every read
// still completes with an explicit error bound instead of failing.
//
// Run with: go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"hetpapi/internal/core"
	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func main() {
	busyRetry()
	enospcFallback()
	hotplugRebuild()
	auditedScenario()
}

// busyRetry shows rung 1 of the ladder: Start meets EBUSY because the
// watchdog holds the fixed cycles counter, backs off in simulated tick
// time, and succeeds once a scheduled fault releases the reservation.
func busyRetry() {
	fmt.Println("1. EBUSY: NMI watchdog holds the fixed cycles counter")
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, err := core.Init(s, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pmu := s.HW.Types[0].PMU.PerfType
	s.Kernel.SetWatchdog(pmu, true)
	// The fault plan releases the counter a few ticks in — while Start is
	// still inside its backoff loop.
	s.Kernel.AttachFaults(faults.NewPlan(faults.Event{
		AtSec: s.Now() + 4*s.Tick(), Kind: faults.KindWatchdogRelease, PMU: pmu,
	}))

	p := s.Spawn(workload.NewInstructionLoop("busy", 1e9, 2000), hw.AllCPUs(s.HW))
	es := papi.CreateEventSet()
	es.Attach(p.PID)
	must(es.AddNamed("adl_glc::CPU_CLK_UNHALTED:THREAD"))
	must(es.Start()) // EBUSY inside, retried; returns after the release
	s.RunFor(0.1)
	vals, err := es.StopValues()
	if err != nil {
		log.Fatal(err)
	}
	r := es.Degradations()
	fmt.Printf("   Start retried %d times over %d ticks, then counted %d cycles\n",
		r.BusyRetries, r.RetryTicks, vals[0].Final)
	es.Cleanup()
	fmt.Println()
}

// enospcFallback shows rung 2: a counter budget (counters held by another
// PMU user) makes the one-group open fail with ENOSPC; the set falls back
// to per-event groups, the kernel multiplexes them, and every reading
// carries its extrapolation error bound.
func enospcFallback() {
	fmt.Println("2. ENOSPC: counter budget forces the multiplex fallback")
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, err := core.Init(s, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pcores := hw.NewCPUSet(s.HW.CPUsOfClass(hw.Performance)...)
	s.Kernel.SetCounterBudget(s.HW.Types[0].PMU.PerfType, 2)

	p := s.Spawn(workload.NewInstructionLoop("squeezed", 1e9, 4000), pcores)
	es := papi.CreateEventSet()
	es.Attach(p.PID)
	for _, name := range []string{
		"adl_glc::INST_RETIRED:ANY",
		"adl_glc::CPU_CLK_UNHALTED:THREAD",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
		"adl_glc::LONGEST_LAT_CACHE:MISS",
	} {
		must(es.AddNamed(name))
	}
	must(es.Start()) // ENOSPC inside: 4 events cannot group under budget 2
	s.RunFor(0.5)
	vals, err := es.StopValues()
	if err != nil {
		log.Fatal(err)
	}
	r := es.Degradations()
	fmt.Printf("   multiplex fallback taken %d time(s); readings with error bounds:\n", r.MultiplexFallback)
	for i, name := range es.Names() {
		v := vals[i]
		fmt.Printf("   %-40s final=%12d  raw=%12d  x%.2f  ±%d\n",
			name, v.Final, v.Raw, v.ScaleFactor, v.ErrorBound)
	}
	es.Cleanup()
	fmt.Println()
}

// hotplugRebuild shows rung 3: the CPU backing the RAPL descriptor goes
// offline mid-run, the dead group is rebuilt on a surviving CPU with the
// accumulated count carried over, and reads never go backwards.
func hotplugRebuild() {
	fmt.Println("3. ENODEV: CPU hotplug kills a descriptor mid-measurement")
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, err := core.Init(s, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p := s.Spawn(workload.NewInstructionLoop("hotplugged", 1e9, 2000), hw.AllCPUs(s.HW))
	es := papi.CreateEventSet()
	es.Attach(p.PID)
	must(es.AddNamed("adl_glc::INST_RETIRED:ANY"))
	must(es.AddNamed("rapl::ENERGY_PKG")) // lives on cpu0
	must(es.Start())
	s.RunFor(0.3)
	before, _ := es.ReadValues()

	s.SetCPUOnline(0, false) // kill the RAPL descriptor's CPU
	s.RunFor(0.3)
	after, err := es.ReadValues()
	if err != nil {
		log.Fatalf("read across hotplug must not fail: %v", err)
	}
	s.SetCPUOnline(0, true)
	s.RunFor(0.1)
	es.StopValues()

	r := es.Degradations()
	fmt.Printf("   energy before offline: %d, after rebuild: %d (monotonic: %v)\n",
		before[1].Final, after[1].Final, after[1].Final >= before[1].Final)
	fmt.Printf("   hotplug rebuilds: %d; degradation log:\n", r.HotplugRebuilds)
	for _, ev := range r.Events {
		fmt.Printf("   t=%-8.3f %-18s %s\n", ev.AtSec, ev.Kind, ev.Detail)
	}
	es.Cleanup()
	fmt.Println()
}

// auditedScenario runs a reference fault scenario — counter steal plus a
// hotplug cycle on the big.LITTLE board — under the full invariant audit,
// showing the same machinery surviving faults inside the harness.
func auditedScenario() {
	fmt.Println("4. Audited fault scenario: biglittle-hotplug (counter steal + CPU cycle)")
	var spec scenario.Spec
	for _, s := range scenario.Reference() {
		if s.Name == "biglittle-hotplug" {
			spec = s
		}
	}
	if spec.Name == "" {
		log.Fatal("reference scenario biglittle-hotplug not found")
	}
	res, err := scenario.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   completed=%v elapsed=%.1fs violations=%d\n",
		res.Completed, res.ElapsedSec, len(res.Violations))
	for i, name := range spec.Measure.Events {
		v := res.MeasureFinal[i]
		fmt.Printf("   %-14s final=%12d  ±%-10d stale=%-5v degraded=%v\n",
			name, v.Final, v.ErrorBound, v.Stale, v.Degraded)
	}
	d := res.Degradations
	fmt.Printf("   degradations: busy=%d deferred=%d mux=%d rebuilds=%d stale=%d clamps=%d\n",
		d.BusyRetries, d.DeferredStarts, d.MultiplexFallback,
		d.HotplugRebuilds, d.StaleReads, d.MonotonicClamps)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
