// Quickstart: boot a simulated hybrid machine, initialize the PAPI-style
// library, and caliper a code region with a multi-PMU EventSet — the
// fine-grained start/stop measurement the paper highlights as PAPI's
// advantage over the perf tool.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func main() {
	// Boot the paper's Raptor Lake desktop: 8 P-cores + 8 E-cores. The
	// scheduler gets some migration noise so the single demo thread visits
	// both core types, as background load causes on a real desktop.
	cfg := sim.DefaultConfig()
	cfg.TickSec = 0.0001
	cfg.Sched.MigrateToEffProb = 0.15
	cfg.Sched.MigrateToPerfProb = 0.30
	cfg.Sched.BalancePeriodSec = 0.001
	cfg.Sched.Seed = 3
	machine := sim.New(hw.RaptorLake(), cfg)

	// PAPI_library_init.
	papi, err := core.Init(machine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	info := papi.HardwareInfo()
	fmt.Printf("running on %s: %d CPUs, hybrid=%v\n", info.Model, info.TotalCPUs, info.Hybrid)
	for _, ct := range info.CoreTypes {
		fmt.Printf("  %s: %d cpus, PMU %s\n", ct.Name, len(ct.CPUs), ct.PMUName)
	}

	// A workload free to migrate between P- and E-cores.
	loop := workload.NewInstructionLoop("demo", 1e6, 500)
	proc := machine.Spawn(loop, hw.AllCPUs(machine.HW))

	// One EventSet, both core types, plus a preset and package energy —
	// everything the paper's sections IV.E, V.2 and V.3 enable.
	es := papi.CreateEventSet()
	must(es.Attach(proc.PID))
	must(es.AddNamed("adl_glc::INST_RETIRED:ANY")) // P-core instructions
	must(es.AddNamed("adl_grt::INST_RETIRED:ANY")) // E-core instructions
	must(es.AddPreset(core.PresetTotIns))          // derived hybrid sum
	must(es.AddNamed("rapl::ENERGY_PKG"))          // package energy

	must(es.Start())
	fmt.Printf("\nEventSet running: %d events in %d perf groups (one per PMU)\n",
		es.NumEvents(), es.NumGroups())

	if !machine.RunUntil(loop.Done, 60) {
		log.Fatal("workload did not finish")
	}

	vals, err := es.Stop()
	if err != nil {
		log.Fatal(err)
	}
	names := es.Names()
	fmt.Println("\nfinal counts:")
	for i, v := range vals {
		if names[i] == "rapl::ENERGY_PKG" {
			fmt.Printf("  %-28s %.2f J\n", names[i], float64(v)*machine.HW.Power.EnergyUnitJ)
			continue
		}
		fmt.Printf("  %-28s %d\n", names[i], v)
	}
	fmt.Printf("\nP + E = %d (loop retired %.0f); PAPI_TOT_INS reports the same sum transparently\n",
		vals[0]+vals[1], loop.TotalInstructions())
	must(es.Cleanup())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
