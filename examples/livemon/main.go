// Livemon: live heterogeneous monitoring through the telemetry subsystem.
// It starts the hetpapid serving stack in-process — sharded time-series
// store, per-machine collector, HTTP API — runs a hybrid scenario with the
// collector attached, and watches the run from the outside through the
// HTTP client the way a dashboard would: live per-core-type instruction
// totals, package power, and the collector's own overhead gauge.
//
// Run with: go run ./examples/livemon
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"hetpapi/internal/scenario"
	"hetpapi/internal/telemetry"
	"hetpapi/internal/telemetry/client"
)

func main() {
	// The serving stack hetpapid runs: store, collector, HTTP API.
	store := telemetry.NewStore(telemetry.Config{Capacity: 4096, Downsample: 4})
	api := telemetry.NewServer(store, 5*time.Second)

	spec := scenario.Spec{}
	for _, s := range scenario.Reference() {
		if s.Name == "dimensity-mixed-injects" {
			spec = s
		}
	}
	if spec.Name == "" {
		log.Fatal("reference scenario dimensity-mixed-injects not found")
	}
	col := telemetry.NewCollector(store, spec.Name, 1)
	api.Register(spec.Name, spec.Name, spec.Machine, col)
	spec.StepHooks = []scenario.StepHook{col.Hook()}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: api.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Printf("telemetry API on http://%s\n\n", ln.Addr())

	// Run the scenario in the background — the collection goroutine.
	runDone := make(chan error, 1)
	go func() {
		api.SetRunning(spec.Name, true)
		defer api.SetRunning(spec.Name, false)
		_, err := scenario.Run(spec)
		runDone <- err
	}()

	// Watch it live over HTTP, the way a dashboard would.
	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	fmt.Printf("%-10s %10s %12s %s\n", "sim time", "power", "overhead/tick", "instructions by core type")
watch:
	for {
		select {
		case err := <-runDone:
			if err != nil {
				log.Fatal(err)
			}
			break watch
		case <-ticker.C:
			ms, err := c.Machines(ctx)
			if err != nil || len(ms) == 0 || ms[0].Ticks == 0 {
				continue
			}
			pw, err := c.Query(ctx, telemetry.QueryRequest{Machine: spec.Name, Series: "power_w", Agg: true})
			if err != nil || pw.Aggregate == nil {
				continue
			}
			groups, err := c.Query(ctx, telemetry.QueryRequest{Machine: spec.Name, Kind: "instructions", By: "type"})
			if err != nil {
				continue
			}
			var byType []string
			for _, g := range groups.Groups {
				byType = append(byType, fmt.Sprintf("%s %.2e", g.Type, g.LastSum))
			}
			fmt.Printf("%8.1fs %8.1f W %10.1f µs   %s\n",
				ms[0].SimSec, pw.Aggregate.Last, ms[0].OverheadPerTickSec*1e6,
				strings.Join(byType, "  "))
		}
	}

	// Final state: the summary a monitoring stack would alert on.
	fmt.Println("\nrun finished; final telemetry:")
	ms, err := c.Machines(ctx)
	if err != nil || len(ms) == 0 {
		log.Fatal(err)
	}
	m := ms[0]
	fmt.Printf("  %d ticks over %.1fs simulated, %d runs\n", m.Ticks, m.SimSec, m.Runs+1)
	fmt.Printf("  ingestion: %.3fs wall (%.2f%% of the run loop, %.1f µs/tick)\n",
		m.IngestSec, m.OverheadRatio*100, m.OverheadPerTickSec*1e6)
	groups, err := c.Query(ctx, telemetry.QueryRequest{Machine: spec.Name, Kind: "instructions", By: "type"})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range groups.Groups {
		fmt.Printf("  %-12s %d cpus, %.3e instructions (mean/cpu-sample %.3e, p95 %.3e)\n",
			g.Type, g.Series, g.LastSum, g.Agg.Mean, g.Agg.P95)
	}

	// And the Prometheus view of the same numbers.
	text, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n/metrics excerpt:")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "hetpapid_") || strings.HasPrefix(line, "hetpapi_pkg_") {
			fmt.Println("  " + line)
		}
	}
}
