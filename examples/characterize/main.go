// characterize measures how different workload classes behave on each core
// type of the hybrid machine — the per-core-type IPC methodology of the
// big.LITTLE characterization studies the paper builds on (Vasilakis et
// al., Whitehouse et al.). Each workload is pinned to one core of each
// type in turn and measured with a PAPI EventSet on that type's PMU.
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func main() {
	fmt.Println("workload characterization on the simulated i7-13700 (pinned, max turbo):")
	fmt.Printf("%-10s %-8s %10s %10s %8s %12s %12s\n",
		"workload", "core", "Minstr", "Mcycles", "IPC", "brMiss/kI", "llcMiss/kI")

	for _, wl := range []string{"compute", "memory", "branchy"} {
		for _, coreName := range []string{"P-core", "E-core"} {
			r, err := measure(wl, coreName)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8s %10.0f %10.0f %8.2f %12.2f %12.2f\n",
				wl, coreName, r.ins/1e6, r.cyc/1e6, r.ins/r.cyc,
				1000*r.msp/r.ins, 1000*r.llc/r.ins)
		}
	}
	fmt.Println("\ncompute keeps its IPC on both types; memory and branchy collapse —")
	fmt.Println("and collapse less dramatically on the E-core, which is why LLC-hostile")
	fmt.Println("work belongs on E-cores (the placement insight behind Table II).")
}

type result struct {
	ins, cyc, msp, llc float64
}

func measure(wl, coreName string) (result, error) {
	machine := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, err := core.Init(machine, core.Options{})
	if err != nil {
		return result{}, err
	}
	m := machine.HW
	cpu := m.CPUsOfType(coreName)[0]

	var task workload.Task
	switch wl {
	case "compute":
		task = workload.NewInstructionLoop("c", 1e6, 2000)
	case "memory":
		task = workload.NewStream("m", 2e9, 0.8, 1)
	default:
		task = workload.NewBranchy("b", 2e9, 1)
	}
	proc := machine.Spawn(task, hw.NewCPUSet(cpu))

	pfm := m.TypeOf(cpu).PfmName
	es := papi.CreateEventSet()
	if err := es.Attach(proc.PID); err != nil {
		return result{}, err
	}
	names := []string{
		pfm + "::INST_RETIRED",
		cyclesEvent(pfm),
		pfm + "::BR_MISP_RETIRED:ALL_BRANCHES",
		pfm + "::LONGEST_LAT_CACHE:MISS",
	}
	for _, n := range names {
		if err := es.AddNamed(n); err != nil {
			return result{}, err
		}
	}
	if err := es.Start(); err != nil {
		return result{}, err
	}
	if !machine.RunUntil(task.Done, 600) {
		return result{}, fmt.Errorf("%s on %s did not finish", wl, coreName)
	}
	vals, err := es.Stop()
	if err != nil {
		return result{}, err
	}
	if err := es.Cleanup(); err != nil {
		return result{}, err
	}
	return result{
		ins: float64(vals[0]),
		cyc: float64(vals[1]),
		msp: float64(vals[2]),
		llc: float64(vals[3]),
	}, nil
}

func cyclesEvent(pfm string) string {
	if pfm == "adl_grt" {
		return pfm + "::CPU_CLK_UNHALTED:CORE"
	}
	return pfm + "::CPU_CLK_UNHALTED:THREAD"
}
