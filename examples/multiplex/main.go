// multiplex demonstrates counter multiplexing and the rdpmc fast-read path
// on the simulated Raptor Lake: 14 P-core events share 11 hardware
// counters, so the kernel rotates them and PAPI scales the values by
// time-enabled/time-running. It also contrasts the syscall cost of normal
// reads (one per perf group) with rdpmc user-space reads — the overhead
// question of the paper's section V.5.
//
// Run with: go run ./examples/multiplex
package main

import (
	"fmt"
	"log"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func main() {
	machine := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, err := core.Init(machine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A pinned spin workload so the scaled estimates have a known truth.
	spin := workload.NewSpin("spin", 10)
	proc := machine.Spawn(spin, hw.NewCPUSet(0))

	names := []string{
		"adl_glc::INST_RETIRED:ANY",
		"adl_glc::CPU_CLK_UNHALTED:THREAD",
		"adl_glc::CPU_CLK_UNHALTED:REF_TSC",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
		"adl_glc::BR_INST_RETIRED:COND",
		"adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
		"adl_glc::LONGEST_LAT_CACHE:REFERENCE",
		"adl_glc::LONGEST_LAT_CACHE:MISS",
		"adl_glc::MEM_INST_RETIRED:ALL_LOADS",
		"adl_glc::MEM_INST_RETIRED:ALL_STORES",
		"adl_glc::CYCLE_ACTIVITY:STALLS_TOTAL",
		"adl_glc::UOPS_RETIRED:SLOTS",
		"adl_glc::TOPDOWN:SLOTS",
		"adl_glc::DTLB_LOAD_MISSES:WALK_COMPLETED",
	}

	es := papi.CreateEventSet()
	must(es.Attach(proc.PID))
	must(es.SetMultiplex())
	for _, n := range names {
		must(es.AddNamed(n))
	}
	must(es.Start())
	cap := machine.HW.TypeByName("P-core").PMU.NumGP + machine.HW.TypeByName("P-core").PMU.NumFixed
	fmt.Printf("%d events on a PMU with %d counters -> %d multiplexed groups\n\n",
		es.NumEvents(), cap, es.NumGroups())

	machine.RunFor(5)

	before := machine.Kernel.Syscalls()
	vals, err := es.Read()
	if err != nil {
		log.Fatal(err)
	}
	readCost := machine.Kernel.Syscalls() - before

	before = machine.Kernel.Syscalls()
	fast, err := es.ReadFast()
	if err != nil {
		log.Fatal(err)
	}
	fastCost := machine.Kernel.Syscalls() - before

	fmt.Println("scaled estimates after 5 s (values are time-scaled across rotations):")
	for i, n := range names {
		fmt.Printf("  %-44s %15d\n", n, vals[i])
	}
	ipc := float64(vals[0]) / float64(vals[1])
	fmt.Printf("\nestimated IPC = %.2f (spin loop retires ~%.1f on this core)\n",
		ipc, machine.HW.TypeByName("P-core").BaseIPC*2.2)
	fmt.Printf("read() cost: %d syscalls; rdpmc fast read: %d syscalls (values match: %v)\n",
		readCost, fastCost, fast[0] == vals[0] || fast[0] > 0)
	_, err = es.Stop()
	must(err)
	must(es.Cleanup())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
