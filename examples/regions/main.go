// regions demonstrates the high-level region API (PAPI_hl_region_begin /
// PAPI_hl_region_end): calipering the phases of a composite application —
// a memory-bound load phase, a compute loop and a branchy analysis pass —
// with hybrid-aware presets that transparently sum both core types.
//
// Run with: go run ./examples/regions
package main

import (
	"fmt"
	"log"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func main() {
	machine := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, err := core.Init(machine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	load := workload.NewStream("load", 3e8, 0.8, 1)
	compute := workload.NewInstructionLoop("compute", 1e6, 800)
	analyze := workload.NewBranchy("analyze", 4e8, 2)
	app := workload.NewSequence("app", load, compute, analyze)
	proc := machine.Spawn(app, hw.AllCPUs(machine.HW))

	hl, err := papi.NewHL(proc.PID,
		core.PresetTotIns, core.PresetTotCyc, core.PresetBrMsp, core.PresetL3TCM)
	if err != nil {
		log.Fatal(err)
	}
	defer hl.Close()

	// Caliper each phase as the sequence advances.
	phaseNames := []string{"load", "compute", "analyze"}
	for _, name := range phaseNames {
		idx := app.PhaseIndex()
		if app.Done() {
			break
		}
		must(hl.Begin(name))
		if !machine.RunUntil(func() bool { return app.PhaseIndex() > idx || app.Done() }, 120) {
			log.Fatalf("phase %s did not finish", name)
		}
		must(hl.End(name))
	}

	fmt.Println("per-region report (PAPI high-level API, hybrid presets):")
	fmt.Println(hl.Report())

	fmt.Println("derived views:")
	for _, r := range hl.Regions() {
		st := hl.Stats(r)
		ins, cyc, msp, l3m := st.Values[0], st.Values[1], st.Values[2], st.Values[3]
		fmt.Printf("  %-8s IPC %.2f   branch misses/kI %6.2f   LLC misses/kI %6.2f\n",
			r,
			float64(ins)/float64(cyc),
			1000*float64(msp)/float64(ins),
			1000*float64(l3m)/float64(ins))
	}
	fmt.Println("\nthe load phase shows the LLC misses, the analyze phase the branch")
	fmt.Println("misses, and the compute phase the highest IPC — measured through one")
	fmt.Println("EventSet spanning both core-type PMUs.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
