#!/bin/sh
# Coverage gate for the measurement substrate. Fails if the combined
# statement coverage of internal/perfevent (simulated kernel + fault
# injection), internal/core (degradation ladder), internal/telemetry
# (time-series store, rungs, fleet query layer), internal/fleet
# (generator, runner, streamer, anomaly detector), internal/stats
# (streaming aggregates) and internal/telemetry/httpobs (serving-path
# request observer) drops below the baseline recorded in
# scripts/coverage_baseline.txt. Update the baseline deliberately, in
# the same commit that justifies the change.
set -eu
cd "$(dirname "$0")/.."
baseline=$(cat scripts/coverage_baseline.txt)
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -coverprofile="$profile" ./internal/perfevent ./internal/core \
  ./internal/telemetry ./internal/telemetry/httpobs ./internal/fleet \
  ./internal/stats
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
awk -v t="$total" -v b="$baseline" 'BEGIN {
  printf "substrate coverage: %.1f%% (baseline %.1f%%)\n", t, b
  if (t + 0.0001 < b) { print "coverage gate FAILED"; exit 1 }
  print "coverage gate OK"
}'
