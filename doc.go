// Package hetpapi reproduces "Performance Measurement on Heterogeneous
// Processors with PAPI" (Cunningham & Weaver, SC 2024) as a pure-Go
// system: a simulated heterogeneous machine substrate (Intel Raptor Lake
// P/E desktop and ARM big.LITTLE OrangePi 800), a faithful perf_event-style
// kernel subsystem, a libpfm4-style event database, and — the paper's
// contribution — a PAPI-style measurement library with full hybrid-CPU
// support.
//
// The packages layer exactly like the real stack:
//
//	internal/hw        machine descriptions (topology, PMUs, power/thermal constants)
//	internal/events    native event database (the per-uarch tables)
//	internal/sysfs     synthetic /sys + /proc discovery surface
//	internal/thermal   lumped RC package thermal model
//	internal/power     RAPL energy counters, PL1/PL2 power limits, wall meter
//	internal/dvfs      frequency governor (power cap + step_wise thermal)
//	internal/workload  HPL (OpenBLAS vs vendor-optimized) and micro workloads
//	internal/sched     CFS-style scheduler with affinity and hybrid noise
//	internal/sim       the stepped machine simulator tying it all together
//	internal/perfevent the perf_event kernel subsystem
//	internal/pfmlib    event-string parsing and encoding (the libpfm4 role)
//	internal/core      the PAPI library with heterogeneous support
//	internal/trace     1 Hz monitoring and multi-run averaging (mon_hpl.py)
//	internal/stats     summary statistics
//	internal/exp       drivers that regenerate every paper table and figure
//
// The benchmarks in this package (bench_test.go) regenerate Table II,
// Table III, Figures 1-4, the papi_hybrid test of section IV.F and the
// overhead study of section V.5. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-versus-measured results.
package hetpapi
