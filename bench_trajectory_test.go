package hetpapi

// TestBenchTrajectory validates the committed BENCH_*.json trajectory:
// each file must parse, carry the fields the next PR's comparison needs,
// and its recorded figures must satisfy its own gate. Two case schemas
// exist in the trajectory:
//
//   - single-machine (BENCH_6): event_sim_s_per_wall_s vs
//     tick_sim_s_per_wall_s per case, gated on min_speedup (the event
//     core against the deleted legacy tick loop) and the seed baseline.
//   - fleet (BENCH_7): machine_sim_s_per_wall_s per case (summed
//     simulated machine-seconds per wall second across the whole fleet
//     run), gated on min_throughput.
//   - ingest (BENCH_9): points_per_s / ns_per_point / allocs_per_point
//     per case (fleet streaming-observability ingest through the rung
//     hierarchy), gated on min_throughput (points/s) and
//     max_allocs_per_point.
//   - serving (BENCH_10): qps / p50_ms / p99_ms / error_pct /
//     allocs_per_op per case, produced by the hetpapiload open-loop
//     harness against the in-process daemon rig, gated on min_qps,
//     max_p99_ms and max_overhead_ratio (BenchmarkHTTPObsOverhead's
//     instrumented/bare request cost).
//
// The test checks the *recorded* numbers, not a live benchmark run, so
// CI stays deterministic on noisy shared runners; the CI bench-smoke
// steps separately run BenchmarkSimThroughput and a small
// BenchmarkFleetThroughput to prove the benchmarks still execute.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type benchCase struct {
	// Single-machine schema.
	EventSimPerWall float64 `json:"event_sim_s_per_wall_s"`
	TickSimPerWall  float64 `json:"tick_sim_s_per_wall_s"`
	Speedup         float64 `json:"speedup"`
	// Fleet schema.
	Machines          int     `json:"machines"`
	MachineSimPerWall float64 `json:"machine_sim_s_per_wall_s"`
	// Ingest schema.
	PointsPerSec   float64 `json:"points_per_s"`
	NsPerPoint     float64 `json:"ns_per_point"`
	AllocsPerPoint float64 `json:"allocs_per_point"`
	// Serving schema (hetpapiload).
	Requests      int     `json:"requests"`
	QPS           float64 `json:"qps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ErrorPct      float64 `json:"error_pct"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	OverheadRatio float64 `json:"overhead_ratio"`
}

// throughput returns the case's headline figure under any schema.
func (c benchCase) throughput() float64 {
	if c.QPS > 0 {
		return c.QPS
	}
	if c.PointsPerSec > 0 {
		return c.PointsPerSec
	}
	if c.MachineSimPerWall > 0 {
		return c.MachineSimPerWall
	}
	return c.EventSimPerWall
}

type benchFile struct {
	ID           string `json:"id"`
	Benchmark    string `json:"benchmark"`
	Metric       string `json:"metric"`
	SeedBaseline struct {
		SimPerWall float64 `json:"sim_s_per_wall_s"`
	} `json:"seed_baseline"`
	Cases map[string]benchCase `json:"cases"`
	Gate  struct {
		Case              string  `json:"case"`
		MinSpeedup        float64 `json:"min_speedup"`
		MinThroughput     float64 `json:"min_throughput"`
		MaxAllocsPerPoint float64 `json:"max_allocs_per_point"`
		MinQPS            float64 `json:"min_qps"`
		MaxP99Ms          float64 `json:"max_p99_ms"`
		MaxOverheadRatio  float64 `json:"max_overhead_ratio"`
	} `json:"gate"`
}

func TestBenchTrajectory(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json trajectory files committed")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var bf benchFile
			if err := json.Unmarshal(raw, &bf); err != nil {
				t.Fatalf("%s does not parse: %v", path, err)
			}
			if bf.ID == "" || bf.Benchmark == "" || bf.Metric == "" {
				t.Fatalf("%s missing id/benchmark/metric", path)
			}
			if len(bf.Cases) == 0 {
				t.Fatalf("%s has no cases", path)
			}
			for name, c := range bf.Cases {
				switch {
				case c.QPS > 0:
					// Serving schema: quantiles must be ordered, the error
					// rate a valid percentage, and the request count and
					// allocation figure present.
					if c.Requests <= 0 {
						t.Errorf("case %s: serving figures without a request count: %+v", name, c)
					}
					if !(c.P50Ms > 0 && c.P50Ms <= c.P99Ms) {
						t.Errorf("case %s: serving quantiles disordered: p50 %.2f p99 %.2f", name, c.P50Ms, c.P99Ms)
					}
					if c.ErrorPct < 0 || c.ErrorPct > 100 {
						t.Errorf("case %s: error_pct %.2f outside [0,100]", name, c.ErrorPct)
					}
					if c.AllocsPerOp <= 0 {
						t.Errorf("case %s: serving figures without allocs_per_op: %+v", name, c)
					}
				case c.NsPerPoint > 0:
					// Ingest schema: points/s and ns/point must agree to
					// within rounding, and the population size must be
					// recorded.
					if c.Machines <= 0 {
						t.Errorf("case %s: ingest figures without a machine count: %+v", name, c)
					}
					if c.PointsPerSec > 0 {
						if implied := 1e9 / c.NsPerPoint; c.PointsPerSec < implied*0.98 || c.PointsPerSec > implied*1.02 {
							t.Errorf("case %s: points_per_s %.0f inconsistent with ns_per_point %.1f (implies %.0f)",
								name, c.PointsPerSec, c.NsPerPoint, implied)
						}
					}
				case c.MachineSimPerWall > 0:
					// Fleet schema: the case must record its fleet size.
					if c.Machines <= 0 {
						t.Errorf("case %s: fleet throughput without a machine count: %+v", name, c)
					}
				case c.EventSimPerWall > 0 && c.TickSimPerWall > 0:
					ratio := c.EventSimPerWall / c.TickSimPerWall
					if c.Speedup > 0 && (ratio < c.Speedup*0.98 || ratio > c.Speedup*1.02) {
						t.Errorf("case %s: recorded speedup %.2f inconsistent with event/tick = %.2f",
							name, c.Speedup, ratio)
					}
				default:
					t.Errorf("case %s: neither schema's figures are positive: %+v", name, c)
				}
			}
			if bf.Gate.Case != "" {
				c, ok := bf.Cases[bf.Gate.Case]
				if !ok {
					t.Fatalf("gate case %q not in cases", bf.Gate.Case)
				}
				if bf.Gate.MinSpeedup > 0 {
					if c.TickSimPerWall <= 0 {
						t.Fatalf("gate: min_speedup on a case without a tick figure: %+v", c)
					}
					if ratio := c.EventSimPerWall / c.TickSimPerWall; ratio < bf.Gate.MinSpeedup {
						t.Errorf("gate: %s event/tick = %.2fx, below the committed %.1fx floor",
							bf.Gate.Case, ratio, bf.Gate.MinSpeedup)
					}
				}
				if bf.Gate.MaxAllocsPerPoint > 0 && c.AllocsPerPoint > bf.Gate.MaxAllocsPerPoint {
					t.Errorf("gate: %s allocs/point %.1f above the committed %.1f ceiling",
						bf.Gate.Case, c.AllocsPerPoint, bf.Gate.MaxAllocsPerPoint)
				}
				if bf.Gate.MinQPS > 0 && c.QPS < bf.Gate.MinQPS {
					t.Errorf("gate: %s qps %.1f below the committed %.1f floor",
						bf.Gate.Case, c.QPS, bf.Gate.MinQPS)
				}
				if bf.Gate.MaxP99Ms > 0 && c.P99Ms > bf.Gate.MaxP99Ms {
					t.Errorf("gate: %s p99 %.2fms above the committed %.1fms ceiling",
						bf.Gate.Case, c.P99Ms, bf.Gate.MaxP99Ms)
				}
				if bf.Gate.MaxOverheadRatio > 0 {
					if c.OverheadRatio <= 0 {
						t.Fatalf("gate: max_overhead_ratio on a case without an overhead figure: %+v", c)
					}
					if c.OverheadRatio > bf.Gate.MaxOverheadRatio {
						t.Errorf("gate: %s instrumented/bare overhead %.3fx above the committed %.2fx ceiling",
							bf.Gate.Case, c.OverheadRatio, bf.Gate.MaxOverheadRatio)
					}
				}
				if bf.Gate.MinThroughput > 0 && c.throughput() < bf.Gate.MinThroughput {
					t.Errorf("gate: %s throughput %.1f below the committed %.1f floor",
						bf.Gate.Case, c.throughput(), bf.Gate.MinThroughput)
				}
				if seed := bf.SeedBaseline.SimPerWall; seed > 0 && c.throughput() < seed {
					t.Errorf("gate: throughput %.1f regressed below the seed baseline %.1f",
						c.throughput(), seed)
				}
			}
		})
	}
}
