package hetpapi

// TestBenchTrajectory validates the committed BENCH_*.json trajectory:
// each file must parse, carry the fields the next PR's comparison needs,
// and its recorded figures must satisfy its own gate (for BENCH_6: the
// event core at least min_speedup times the legacy tick loop on the
// reference HPL case, and no slower than the seed repo's tick figure).
// The test checks the *recorded* numbers, not a live benchmark run, so
// CI stays deterministic on noisy shared runners; the CI bench-smoke
// step separately runs BenchmarkSimThroughput to prove the benchmark
// itself still executes.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type benchCase struct {
	EventSimPerWall float64 `json:"event_sim_s_per_wall_s"`
	TickSimPerWall  float64 `json:"tick_sim_s_per_wall_s"`
	Speedup         float64 `json:"speedup"`
}

type benchFile struct {
	ID           string `json:"id"`
	Benchmark    string `json:"benchmark"`
	Metric       string `json:"metric"`
	SeedBaseline struct {
		SimPerWall float64 `json:"sim_s_per_wall_s"`
	} `json:"seed_baseline"`
	Cases map[string]benchCase `json:"cases"`
	Gate  struct {
		Case       string  `json:"case"`
		MinSpeedup float64 `json:"min_speedup"`
	} `json:"gate"`
}

func TestBenchTrajectory(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json trajectory files committed")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var bf benchFile
			if err := json.Unmarshal(raw, &bf); err != nil {
				t.Fatalf("%s does not parse: %v", path, err)
			}
			if bf.ID == "" || bf.Benchmark == "" || bf.Metric == "" {
				t.Fatalf("%s missing id/benchmark/metric", path)
			}
			if len(bf.Cases) == 0 {
				t.Fatalf("%s has no cases", path)
			}
			for name, c := range bf.Cases {
				if c.EventSimPerWall <= 0 || c.TickSimPerWall <= 0 {
					t.Errorf("case %s: non-positive throughput figures %+v", name, c)
					continue
				}
				ratio := c.EventSimPerWall / c.TickSimPerWall
				if c.Speedup > 0 && (ratio < c.Speedup*0.98 || ratio > c.Speedup*1.02) {
					t.Errorf("case %s: recorded speedup %.2f inconsistent with event/tick = %.2f",
						name, c.Speedup, ratio)
				}
			}
			if bf.Gate.Case != "" {
				c, ok := bf.Cases[bf.Gate.Case]
				if !ok {
					t.Fatalf("gate case %q not in cases", bf.Gate.Case)
				}
				if ratio := c.EventSimPerWall / c.TickSimPerWall; ratio < bf.Gate.MinSpeedup {
					t.Errorf("gate: %s event/tick = %.2fx, below the committed %.1fx floor",
						bf.Gate.Case, ratio, bf.Gate.MinSpeedup)
				}
				if seed := bf.SeedBaseline.SimPerWall; seed > 0 && c.EventSimPerWall < seed {
					t.Errorf("gate: event throughput %.1f sim-s/wall-s regressed below the seed tick-loop figure %.1f",
						c.EventSimPerWall, seed)
				}
			}
		})
	}
}
