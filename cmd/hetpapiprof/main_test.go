package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetpapi/internal/profile"
)

func TestListNamesEveryReferenceScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"raptorlake-hpl-pcores", "biglittle-hotplug", "homogeneous-powercap"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"record"},
		{"record", "-scenario", "no-such-scenario"},
		{"report"},
		{"report", "/no/such/profile.pb.gz"},
		{"diff", "only-one.pb.gz"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// TestRecordReportDiffRoundTrip drives the full workflow: record two
// shortened runs, verify the written file decodes as a valid pprof
// profile, re-render it with report and diff the pair.
func TestRecordReportDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	short := filepath.Join(dir, "short.pb.gz")
	long := filepath.Join(dir, "long.pb.gz")
	folded := filepath.Join(dir, "short.folded")

	var out bytes.Buffer
	if err := run([]string{"record", "-scenario", "raptorlake-hpl-pcores",
		"-max-seconds", "3", "-o", short, "-folded", folded}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "profiled raptorlake-hpl-pcores") ||
		!strings.Contains(s, "wrote "+short) ||
		!strings.Contains(s, "P-core:") ||
		!strings.Contains(s, "error bound") ||
		!strings.Contains(s, "profiler overhead:") {
		t.Fatalf("record output:\n%s", s)
	}
	if err := run([]string{"record", "-scenario", "raptorlake-hpl-pcores",
		"-max-seconds", "4", "-o", long}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// The written file is a decodable pprof profile with samples.
	f, err := os.Open(short)
	if err != nil {
		t.Fatal(err)
	}
	d, err := profile.DecodePprof(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) == 0 || len(d.SampleTypes) != 3 {
		t.Fatalf("exported profile: %d samples, %d types", len(d.Samples), len(d.SampleTypes))
	}

	// The folded export has "frames weight" lines.
	fb, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(fb)), "\n") {
		if !strings.Contains(line, ";") || !strings.Contains(line, " ") {
			t.Fatalf("malformed folded line %q", line)
		}
	}

	out.Reset()
	if err := run([]string{"report", "-top", "3", short}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P-core:") || !strings.Contains(out.String(), "error bound") {
		t.Fatalf("report output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"diff", short, long}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "core type") ||
		!strings.Contains(out.String(), "delta") ||
		!strings.Contains(out.String(), "combined error bound") {
		t.Fatalf("diff output:\n%s", out.String())
	}
}
