// Command hetpapiprof is the hybrid-aware statistical profiler front
// end: it records per-core-type sampled profiles of reference scenario
// runs, renders top-N attribution tables split by core type, and diffs
// two profiles' P-vs-E attribution. A recording opens one sampled cycles
// event per core-type PMU for every workload task (a cpu_core event only
// fires on P-cores, so the sample stream itself carries the hybrid
// split), attributes every overflow record to (core type, CPU, workload
// phase, DVFS frequency) and writes a gzipped pprof profile.proto —
// open it with `go tool pprof` — plus, optionally, folded flamegraph
// stacks for flamegraph.pl or speedscope.
//
// Usage:
//
//	hetpapiprof list
//	hetpapiprof record -scenario NAME [-o profile.pb.gz] [-folded out.folded]
//	                   [-period N] [-drain-every N] [-seed N]
//	                   [-max-seconds S] [-top N]
//	hetpapiprof report [-top N] profile.pb.gz
//	hetpapiprof diff old.pb.gz new.pb.gz
//
// record runs the named reference scenario (see list) with the profiler
// attached, prints the attribution report and the profiler's
// self-overhead, and writes the profile. report re-renders a written
// profile, recovering the lost-sample error bound from the file's
// comment metadata. diff compares per-core-type busy shares of two
// profiles — the P-vs-E attribution delta between two runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hetpapi/internal/profile"
	"hetpapi/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetpapiprof:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hetpapiprof <list|record|report|diff> [args]")
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "record":
		return cmdRecord(args[1:], out)
	case "report":
		return cmdReport(args[1:], out)
	case "diff":
		return cmdDiff(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, record, report or diff)", args[0])
	}
}

func cmdList(out io.Writer) error {
	for _, spec := range scenario.Reference() {
		fmt.Fprintf(out, "%-28s machine=%-14s %gs\n", spec.Name, spec.Machine, spec.MaxSeconds)
	}
	return nil
}

func cmdRecord(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	name := fs.String("scenario", "", "reference scenario name (see list)")
	outPath := fs.String("o", "profile.pb.gz", "output pprof file")
	foldedPath := fs.String("folded", "", "also write folded flamegraph stacks here")
	period := fs.Uint64("period", 0, "sampling period in cycles (0 = default)")
	drainEvery := fs.Int("drain-every", 0, "ring drain cadence in ticks (0 = default)")
	seed := fs.Int64("seed", -1, "override the scenario seed (-1 = spec default)")
	maxSec := fs.Float64("max-seconds", 0, "override the simulated run length (0 = spec default)")
	topN := fs.Int("top", 5, "rows per core type in the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := findScenario(*name)
	if err != nil {
		return err
	}
	if *seed >= 0 {
		spec.Seed = *seed
	}
	if *maxSec > 0 {
		spec.MaxSeconds = *maxSec
	}

	col := profile.NewCollector(nil, profile.Config{Period: *period, DrainEveryTicks: *drainEvery})
	spec.StepHooks = append(spec.StepHooks, col.Hook())
	res, err := scenario.Run(spec)
	if err != nil {
		return fmt.Errorf("running %s: %w", spec.Name, err)
	}
	prof := col.Finish()

	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := profile.WritePprof(f, prof); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", *outPath, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *foldedPath != "" {
		ff, err := os.Create(*foldedPath)
		if err != nil {
			return err
		}
		if err := profile.WriteFolded(ff, prof); err != nil {
			ff.Close()
			return fmt.Errorf("writing %s: %w", *foldedPath, err)
		}
		if err := ff.Close(); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "profiled %s on %s: %.1fs simulated, completed=%v\n",
		res.Name, res.MachineName, res.ElapsedSec, res.Completed)
	fmt.Fprintf(out, "wrote %s: %d samples retained, %d lost\n", *outPath, prof.Emitted, prof.Lost)
	if *foldedPath != "" {
		fmt.Fprintf(out, "wrote %s: %d folded stacks\n", *foldedPath, len(prof.Buckets))
	}
	fmt.Fprintln(out)
	writeReport(out, prof, *topN)
	fmt.Fprintln(out)
	fmt.Fprintln(out, col.Overhead().String())
	return nil
}

func cmdReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	topN := fs.Int("top", 5, "rows per core type")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: hetpapiprof report [-top N] <profile.pb.gz>")
	}
	prof, err := loadProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	writeReport(out, prof, *topN)
	return nil
}

func cmdDiff(args []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: hetpapiprof diff <old.pb.gz> <new.pb.gz>")
	}
	a, err := loadProfile(args[0])
	if err != nil {
		return err
	}
	b, err := loadProfile(args[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "diff %s -> %s\n", args[0], args[1])
	sa, sb := a.Shares(), b.Shares()
	types := map[string]bool{}
	for ct := range sa {
		types[ct] = true
	}
	for ct := range sb {
		types[ct] = true
	}
	names := make([]string, 0, len(types))
	for ct := range types {
		names = append(names, ct)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-12s %8s %8s %8s\n", "core type", "old", "new", "delta")
	for _, ct := range names {
		fmt.Fprintf(out, "%-12s %7.1f%% %7.1f%% %+7.1f%%\n",
			ct, sa[ct]*100, sb[ct]*100, (sb[ct]-sa[ct])*100)
	}
	fmt.Fprintf(out, "samples: %d -> %d (lost %d -> %d)\n", a.Emitted, b.Emitted, a.Lost, b.Lost)
	fmt.Fprintf(out, "combined error bound: %.4f\n", a.ErrorBound()+b.ErrorBound())
	return nil
}

// writeReport renders the attribution tables: busy shares per core type,
// then the top-N buckets of each core type.
func writeReport(out io.Writer, p *profile.Profile, topN int) {
	fmt.Fprintf(out, "profile: %d samples over %.2fs (period %d %s), %d lost, error bound %.4f\n",
		p.Emitted, p.DurationSec, p.Period, p.Event, p.Lost, p.ErrorBound())
	if !p.Complete() {
		fmt.Fprintf(out, "WARNING: no sampled event on: %v (partial profile)\n", p.MissingPMUs)
	}
	shares := p.Shares()
	for _, ct := range p.CoreTypes() {
		fmt.Fprintf(out, "\n%s: %.1f%% of busy time\n", ct, shares[ct]*100)
		fmt.Fprintf(out, "  %-16s %5s %8s %14s %12s\n", "phase", "cpu", "samples", p.Event, "busy")
		for _, r := range p.Top(topN, ct) {
			phase := r.Phase
			if phase == "" {
				phase = "-"
			}
			fmt.Fprintf(out, "  %-16s %5d %8d %14.0f %10.3fms\n",
				phase, r.CPU, r.Samples, r.Weight, r.BusySec*1e3)
		}
	}
}

func loadProfile(path string) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := profile.DecodePprof(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	p, err := profile.FromDecoded(d)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func findScenario(name string) (scenario.Spec, error) {
	if name == "" {
		return scenario.Spec{}, fmt.Errorf("missing -scenario (see hetpapiprof list)")
	}
	for _, spec := range scenario.Reference() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return scenario.Spec{}, fmt.Errorf("unknown scenario %q (see hetpapiprof list)", name)
}
