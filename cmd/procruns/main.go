// Command procruns is the process_runs.py analog of the paper's artifact
// A2: it reads one or more raw monitoring CSVs (as written by monhpl),
// aligns and averages them into a single averaged run, writes the averaged
// CSV to stdout, and prints a summary to stderr.
//
// Usage:
//
//	monhpl -n_runs 1 > run1.csv
//	monhpl -n_runs 1 -seed 2 > run2.csv
//	procruns run1.csv run2.csv > averaged.csv
package main

import (
	"fmt"
	"os"

	"hetpapi/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: procruns RUN.csv [RUN.csv ...]")
		os.Exit(2)
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "procruns:", err)
		os.Exit(1)
	}
}

func run(paths []string) error {
	var runs [][]trace.Sample
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		samples, err := trace.ParseCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if len(samples) == 0 {
			return fmt.Errorf("%s: trace has no samples", path)
		}
		runs = append(runs, samples)
		fmt.Fprintf(os.Stderr, "procruns: %s: %d samples, %.0f s\n",
			path, len(samples), samples[len(samples)-1].TimeSec)
	}

	avg := trace.AverageRuns(runs)
	if len(avg) == 0 {
		return fmt.Errorf("no overlapping samples across runs")
	}
	ncpu := len(avg[0].FreqMHz)
	if err := trace.WriteCSV(os.Stdout, ncpu, avg); err != nil {
		return err
	}

	sum := trace.Summarize(avg)
	fmt.Fprintf(os.Stderr, "procruns: averaged %d run(s): %d samples over %.0f s\n",
		len(runs), sum.Samples, sum.DurationSec)
	fmt.Fprintf(os.Stderr, "  mean power %.1f W, peak %.1f W, energy %.0f J, max temp %.1f C\n",
		sum.MeanPowerW, sum.PeakPowerW, sum.EnergyJ, sum.MaxTempC)
	lo, hi := sum.MedianFreqMHz[0], sum.MedianFreqMHz[0]
	for _, f := range sum.MedianFreqMHz {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	fmt.Fprintf(os.Stderr, "  per-cpu median frequency: %.0f-%.0f MHz\n", lo, hi)
	return nil
}
