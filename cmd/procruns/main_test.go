package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hetpapi/internal/trace"
)

func writeRun(t *testing.T, dir, name string, samples []trace.Sample) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, 2, samples); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAverageTwoRuns(t *testing.T) {
	dir := t.TempDir()
	mk := func(base float64) []trace.Sample {
		var out []trace.Sample
		for i := 0; i < 5; i++ {
			out = append(out, trace.Sample{
				TimeSec: float64(i),
				FreqMHz: []float64{base, base * 2},
				TempC:   30 + base/1000,
				PowerW:  base / 100,
				EnergyJ: float64(i) * base / 100,
				WallW:   base/100 + 10,
			})
		}
		return out
	}
	p1 := writeRun(t, dir, "r1.csv", mk(1000))
	p2 := writeRun(t, dir, "r2.csv", mk(3000))

	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	err := run([]string{p1, p2})
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"/no/such/file.csv"}); err == nil {
		t.Error("missing file must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("not,a,trace\n1,2,3\n"), 0o644)
	if err := run([]string{bad}); err == nil {
		t.Error("malformed csv must fail")
	}
	empty := filepath.Join(dir, "empty.csv")
	os.WriteFile(empty, []byte("time_s,cpu0_mhz,temp_c,energy_j,power_w,wall_w\n"), 0o644)
	if err := run([]string{empty}); err == nil {
		t.Error("header-only trace must fail, not panic")
	}
}
