package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hetpapi/internal/fleet"
)

func runCLI(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	if err := run(context.Background(), args, &out, &errw); err != nil {
		t.Fatalf("hetpapifleet %v: %v\n%s", args, err, errw.String())
	}
	return out.String(), errw.String()
}

func TestCLIReportReproducible(t *testing.T) {
	args := []string{"-n", "12", "-seed", "99", "-chaos", "0.5", "-quiet"}
	a, _ := runCLI(t, args...)
	b, _ := runCLI(t, append([]string{"-workers", "2"}, args...)...)
	if a != b {
		t.Fatal("same seed at different worker counts produced different reports")
	}
	var rep fleet.Report
	if err := json.Unmarshal([]byte(a), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Machines != 12 || rep.Seed != 99 {
		t.Fatalf("report header %+v", rep)
	}
	if rep.Completed != 12 {
		t.Fatalf("%d/12 machines completed; incidents %+v", rep.Completed, rep.Incidents)
	}
	if len(rep.Results) != 0 {
		t.Fatal("per-machine results included without -results")
	}
}

func TestCLIResultsAndSummary(t *testing.T) {
	out, errw := runCLI(t, "-n", "5", "-seed", "3", "-results", "-templates", "homogeneous-stream")
	var rep fleet.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("-results kept %d machine entries", len(rep.Results))
	}
	if len(rep.Templates) != 1 || rep.Templates[0].Template != "homogeneous-stream" {
		t.Fatalf("template filter ignored: %+v", rep.Templates)
	}
	if !strings.Contains(errw, "machine-sim-sec") || !strings.Contains(errw, "throughput") {
		t.Fatalf("summary missing from stderr: %q", errw)
	}
}

func TestCLIListTemplatesAndErrors(t *testing.T) {
	out, _ := runCLI(t, "-list-templates")
	for _, want := range []string{"raptor-hpl", "biglittle-measure", "homogeneous-stream"} {
		if !strings.Contains(out, want) {
			t.Fatalf("template listing missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-templates", "nope"}, &buf, &buf); err == nil ||
		!strings.Contains(err.Error(), "unknown template") {
		t.Fatalf("unknown template error = %v", err)
	}
	if err := run(context.Background(), []string{"-n", "0"}, &buf, &buf); err == nil {
		t.Fatal("zero machines must error")
	}
}
