// Command hetpapifleet generates and runs a simulated fleet from one
// seed and writes the roll-up report: expand a weighted template mix
// into N machines (per-machine derived scheduler seeds, staggered
// cold-starts, optional seed-derived chaos fault plans), run every
// machine's event-driven simulation to completion on a bounded worker
// pool, and aggregate per-core-type counters, energy, degradation
// tallies and the incident ledger across the whole population.
//
// Usage:
//
//	hetpapifleet [-n 1000] [-seed 1] [-stagger 0.5]
//	             [-chaos 0.25] [-chaos-max-events 8]
//	             [-workers 0] [-max-seconds S]
//	             [-templates name,name,...] [-o report.json]
//	             [-stream] [-stream-period S] [-anomaly-threshold 4.0]
//	             [-results] [-quiet]
//	hetpapifleet -list-templates
//
// The report JSON is a pure function of (-n, -seed, template mix,
// -stagger, -chaos, -stream): rerunning with the same flags reproduces
// it byte-for-byte at any worker count. -o - (the default) writes the
// report to stdout; the human summary goes to stderr unless -quiet.
// -results includes the per-machine outcome array in the report;
// without it only the fleet roll-up is written. -templates restricts
// the built-in mix (see -list-templates) to the named templates,
// keeping their relative weights.
//
// -stream hooks every machine with the telemetry streamer: machine
// scalars, per-core-type counter totals and degradation tallies flow
// into an in-process store (downsampled into 1s/10s/1m rungs at
// ingest), the robust z-score anomaly detector scores each template
// population and embeds outliers in the report, and the streamer's
// self-measured ingest cost is printed to stderr. -stream-period
// overrides the per-template sampling cadence in simulated seconds;
// -anomaly-threshold tunes the outlier score (0 disables detection).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetpapi/internal/fleet"
	"hetpapi/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hetpapifleet:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("hetpapifleet", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		n         = fs.Int("n", 1000, "fleet size (machines)")
		seed      = fs.Int64("seed", 1, "fleet seed")
		stagger   = fs.Float64("stagger", 0.5, "cold-start stagger window (simulated seconds)")
		chaos     = fs.Float64("chaos", 0.25, "fraction of machines that draw a chaos fault plan (0 disables)")
		chaosMax  = fs.Int("chaos-max-events", 0, "max fault events per chaos plan (0 = default)")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		maxSec    = fs.Float64("max-seconds", 0, "override every template's simulated run bound (0 = keep)")
		templates = fs.String("templates", "", "comma-separated subset of the built-in templates (empty = all)")
		outPath   = fs.String("o", "-", "report output path (- = stdout)")
		results   = fs.Bool("results", false, "include the per-machine results array in the report")
		quiet     = fs.Bool("quiet", false, "suppress the progress and summary output on stderr")
		list      = fs.Bool("list-templates", false, "list the built-in templates and exit")
		stream    = fs.Bool("stream", false, "stream every machine's series into an in-process telemetry store (enables anomaly detection)")
		period    = fs.Float64("stream-period", 0, "streaming sample period in simulated seconds (0 = per-template cadence)")
		anomaly   = fs.Float64("anomaly-threshold", 4.0, "robust z-score threshold for flagging outlier machines (0 disables; needs -stream)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, t := range fleet.DefaultTemplates() {
			fmt.Fprintf(out, "%-20s weight=%d machine=%s workloads=%d\n",
				t.Name, t.Weight, t.Spec.Machine, len(t.Spec.Workloads))
		}
		return nil
	}

	gen := fleet.GenConfig{
		Machines:           *n,
		Seed:               *seed,
		StaggerSec:         *stagger,
		MaxSecondsOverride: *maxSec,
	}
	if *templates != "" {
		picked, err := pickTemplates(*templates)
		if err != nil {
			return err
		}
		gen.Templates = picked
	}
	if *chaos > 0 {
		gen.Chaos = &fleet.ChaosConfig{IncidentRate: *chaos, MaxEvents: *chaosMax}
	}
	f, err := fleet.Generate(gen)
	if err != nil {
		return err
	}

	rc := fleet.RunConfig{Workers: *workers}
	if *stream {
		// The CLI's store is in-process only: it feeds the anomaly
		// detector and the self-overhead accounting. Modest capacities
		// keep a 1,000-machine run's footprint bounded; the rungs carry
		// the history population queries would use.
		store := telemetry.NewStore(telemetry.Config{Capacity: 512, RungCapacity: 512})
		rc.Streamer = fleet.NewStreamer(store, *period)
		if *anomaly > 0 {
			rc.Anomaly = &fleet.AnomalyConfig{Threshold: *anomaly}
		}
	}
	done := 0
	if !*quiet {
		rc.OnMachine = func(fleet.MachineResult) {
			done++
			if done%100 == 0 || done == len(f.Machines) {
				fmt.Fprintf(errw, "hetpapifleet: %d/%d machines done\n", done, len(f.Machines))
			}
		}
	}
	start := time.Now()
	rep, err := fleet.Run(ctx, f, rc)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	if !*quiet {
		fmt.Fprint(errw, rep.Summary())
		fmt.Fprintf(errw, "  wall=%.2fs throughput=%.0f machine-sim-s/wall-s\n",
			wall, rep.MachineSimSec/wall)
		if rc.Streamer != nil {
			o := rc.Streamer.SelfOverhead()
			fmt.Fprintf(errw, "  streaming self-overhead: %d points in %.1fms (%.0f ns/point, %.1f%% of wall)\n",
				o.Points, o.IngestSec*1e3, o.NsPerPoint, 100*o.IngestSec/wall)
		}
	}
	if rc.Streamer != nil {
		rc.Streamer.ExportOverhead(0)
	}

	if !*results {
		rep = rep.Compact()
	}
	w := out
	if *outPath != "-" {
		file, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return rep.WriteJSON(w)
}

// pickTemplates restricts the built-in mix to the named templates.
func pickTemplates(names string) ([]fleet.Template, error) {
	all := fleet.DefaultTemplates()
	byName := map[string]fleet.Template{}
	known := make([]string, 0, len(all))
	for _, t := range all {
		byName[t.Name] = t
		known = append(known, t.Name)
	}
	var out []fleet.Template
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown template %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no templates selected")
	}
	return out, nil
}
