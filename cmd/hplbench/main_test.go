package main

import (
	"os"
	"testing"

	"hetpapi/internal/exp"
)

func quiet(t *testing.T, fn func() error) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
}

func smallCfg() exp.Config {
	cfg := exp.Quick()
	cfg.N = 3840
	cfg.ArmN = 4096
	return cfg
}

func TestRunEachExperiment(t *testing.T) {
	for _, which := range []string{"table2", "table3", "fig12", "fig3", "fig4", "energy", "ablations"} {
		which := which
		t.Run(which, func(t *testing.T) {
			quiet(t, func() error { return run(smallCfg(), which) })
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(smallCfg(), "nope"); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
