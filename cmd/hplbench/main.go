// Command hplbench runs the HPL comparison experiments of the paper's
// motivation section on the simulated machines and prints the paper's
// tables and figure summaries.
//
// Usage:
//
//	hplbench [-n N] [-nb NB] [-runs R] [-quick] <experiment>
//
// Experiments:
//
//	table2    Table II: OpenBLAS vs Intel HPL Gflops per core selection
//	table3    Table III: LLC miss rate and instruction share per core type
//	fig12     Figures 1-2: frequency / power / temperature trace summary
//	fig3      Figure 3: OrangePi throttling traces
//	fig4      Figure 4: OrangePi performance as cores are added
//	energy    extension: energy-to-solution and Gflops/W per Table II cell
//	ablations design-choice studies (strategy sweep, turbo budget,
//	          multiplex interval, scheduler placement)
//	all       everything above (except ablations)
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpapi/internal/exp"
)

func main() {
	n := flag.Int("n", 0, "override HPL problem size N (default: paper's 57024)")
	nb := flag.Int("nb", 0, "override HPL block size NB (default: paper's 192)")
	runs := flag.Int("runs", 0, "override runs per cell")
	quick := flag.Bool("quick", false, "use the scaled-down test configuration")
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *nb > 0 {
		cfg.NB = *nb
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}

	if err := run(cfg, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "hplbench:", err)
		os.Exit(1)
	}
}

func run(cfg exp.Config, which string) error {
	do := func(name string) error {
		switch name {
		case "table2":
			res, err := exp.TableII(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Table II: benchmark performance comparison")
			fmt.Print(res)
		case "table3":
			res, err := exp.TableIII(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Table III: hardware counter measurements for all-core runs")
			fmt.Print(res)
		case "fig12":
			res, err := exp.Figures1And2(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figures 1-2: all-core run traces (Raptor Lake)")
			fmt.Print(res)
		case "fig3":
			res, err := exp.Figure3(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figure 3: OrangePi frequency scaling behaviour")
			fmt.Print(res)
		case "fig4":
			res, err := exp.Figure4(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figure 4: OrangePi HPL performance as more cores are added")
			fmt.Print(res)
		case "energy":
			res, err := exp.EnergyTable(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Energy to solution (RAPL) per Table II cell")
			fmt.Print(res)
		case "ablations":
			sweep, err := exp.AblationStrategySweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Ablation: threading strategy vs E-core count")
			fmt.Print(sweep)
			turbo, err := exp.AblationTurboBudget(cfg)
			if err != nil {
				return err
			}
			fmt.Println("\nAblation: PL2 turbo budget")
			fmt.Print(turbo)
			mux, err := exp.AblationMuxInterval(cfg)
			if err != nil {
				return err
			}
			fmt.Println("\nAblation: multiplex rotation interval")
			fmt.Print(mux)
			sched, err := exp.AblationSchedulerPreference(cfg)
			if err != nil {
				return err
			}
			fmt.Println("\nAblation: scheduler placement")
			fmt.Print(sched)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	if which == "all" {
		for _, name := range []string{"table2", "table3", "fig12", "fig3", "fig4"} {
			if err := do(name); err != nil {
				return err
			}
		}
		return nil
	}
	return do(which)
}
