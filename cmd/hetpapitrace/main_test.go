package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListNamesEveryReferenceScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"raptorlake-hpl-pcores", "biglittle-hotplug", "homogeneous-powercap"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"record"},
		{"record", "-scenario", "no-such-scenario"},
		{"analyze"},
		{"analyze", "/no/such/file.json"},
		{"diff", "only-one.json"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// TestRecordAnalyzeDiffRoundTrip drives the full CLI workflow on a
// shortened fault scenario: record twice (different lengths), check the
// exported file is a valid trace document, then analyze and diff.
func TestRecordAnalyzeDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	short := filepath.Join(dir, "short.json")
	long := filepath.Join(dir, "long.json")

	var out bytes.Buffer
	// -capacity large enough that the per-tick probe-read flood on the
	// kernel track does not wrap away the t=0 open syscalls.
	if err := run([]string{"record", "-scenario", "biglittle-hotplug",
		"-max-seconds", "5", "-capacity", "65536", "-o", short}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recorded biglittle-hotplug") ||
		!strings.Contains(out.String(), "wrote "+short) {
		t.Fatalf("record output:\n%s", out.String())
	}
	if err := run([]string{"record", "-scenario", "biglittle-hotplug",
		"-max-seconds", "6", "-o", long}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(short)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("exported file is not a trace document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace is empty")
	}

	out.Reset()
	if err := run([]string{"analyze", short}, &out); err != nil {
		t.Fatal(err)
	}
	rep := out.String()
	// The hotplug scenario runs a loop on the LITTLE cores with a PAPI
	// probe under counter-steal and hotplug faults: the analyzer must
	// attribute exec time, profile syscalls and surface the faults.
	for _, want := range []string{
		"per-core-type attribution", "LITTLE",
		"syscall latency", "open", "read",
		"fault transitions", "hotplug-off",
		"critical path",
		"recorder self-overhead",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("analyze output missing %q:\n%s", want, rep)
		}
	}

	out.Reset()
	if err := run([]string{"diff", short, long}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "duration:") {
		t.Fatalf("diff output:\n%s", out.String())
	}
}

func TestRecordWithAnalyzeFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"record", "-scenario", "homogeneous-powercap",
		"-max-seconds", "3", "-analyze", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "per-core-type attribution") {
		t.Fatalf("-analyze did not print a report:\n%s", out.String())
	}
}
