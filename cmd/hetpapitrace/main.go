// Command hetpapitrace records, analyzes and compares cross-layer span
// traces of reference scenario runs. A recording drives one scenario
// with a span recorder attached to the whole machine stack (scheduler
// exec spans and migrations, perf_event syscalls and fault transitions,
// PAPI degradation-ladder events, scenario injections) and writes the
// result as Chrome trace-event / Perfetto JSON — open it directly in
// ui.perfetto.dev or chrome://tracing.
//
// Usage:
//
//	hetpapitrace list
//	hetpapitrace record -scenario NAME [-o trace.json] [-seed N]
//	                    [-max-seconds S] [-capacity N] [-analyze]
//	hetpapitrace analyze trace.json
//	hetpapitrace diff old.json new.json
//
// record runs the named reference scenario (see list) and writes the
// trace; -analyze additionally prints the analyzer report afterwards.
// analyze recomputes the report from a trace file: per-core-type time
// attribution, the migration timeline, syscall latency histograms, the
// run's critical path and the recorder's self-overhead. diff compares
// two reports, for before/after runs of the same scenario.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetpapi/internal/scenario"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/spantrace/analyze"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetpapitrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hetpapitrace <list|record|analyze|diff> [args]")
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "record":
		return cmdRecord(args[1:], out)
	case "analyze":
		return cmdAnalyze(args[1:], out)
	case "diff":
		return cmdDiff(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, record, analyze or diff)", args[0])
	}
}

func cmdList(out io.Writer) error {
	for _, spec := range scenario.Reference() {
		fmt.Fprintf(out, "%-28s machine=%-14s %gs\n", spec.Name, spec.Machine, spec.MaxSeconds)
	}
	return nil
}

func cmdRecord(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	name := fs.String("scenario", "", "reference scenario name (see list)")
	outPath := fs.String("o", "trace.json", "output trace file")
	seed := fs.Int64("seed", -1, "override the scenario seed (-1 = spec default)")
	maxSec := fs.Float64("max-seconds", 0, "override the simulated run length (0 = spec default)")
	capacity := fs.Int("capacity", spantrace.DefaultTrackCapacity, "per-track ring capacity (events)")
	doAnalyze := fs.Bool("analyze", false, "print the analyzer report after recording")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := findScenario(*name)
	if err != nil {
		return err
	}
	if *seed >= 0 {
		spec.Seed = *seed
	}
	if *maxSec > 0 {
		spec.MaxSeconds = *maxSec
	}

	rec := spantrace.New(spantrace.Config{TrackCapacity: *capacity})
	rec.Enable()
	spec.Tracer = rec
	res, err := scenario.Run(spec)
	if err != nil {
		return fmt.Errorf("running %s: %w", spec.Name, err)
	}

	snap := rec.Snapshot()
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := spantrace.WriteJSON(f, snap); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", *outPath, err)
	}
	if err := f.Close(); err != nil {
		return err
	}

	st := rec.Stats()
	fmt.Fprintf(out, "recorded %s on %s: %.1fs simulated, completed=%v\n",
		res.Name, res.MachineName, res.ElapsedSec, res.Completed)
	fmt.Fprintf(out, "wrote %s: %d events retained (%d emitted, %d dropped) on %d tracks\n",
		*outPath, st.Retained, st.Emitted, st.Dropped, st.Tracks)
	if *doAnalyze {
		fmt.Fprintln(out)
		return analyzeFile(*outPath, out)
	}
	return nil
}

func cmdAnalyze(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: hetpapitrace analyze <trace.json>")
	}
	return analyzeFile(args[0], out)
}

func analyzeFile(path string, out io.Writer) error {
	rep, err := loadReport(path)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, rep.String())
	return err
}

func cmdDiff(args []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: hetpapitrace diff <old.json> <new.json>")
	}
	a, err := loadReport(args[0])
	if err != nil {
		return err
	}
	b, err := loadReport(args[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "diff %s -> %s\n", args[0], args[1])
	_, err = io.WriteString(out, analyze.Diff(a, b))
	return err
}

func loadReport(path string) (*analyze.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := analyze.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return analyze.Analyze(t), nil
}

func findScenario(name string) (scenario.Spec, error) {
	if name == "" {
		return scenario.Spec{}, fmt.Errorf("missing -scenario (see hetpapitrace list)")
	}
	for _, spec := range scenario.Reference() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return scenario.Spec{}, fmt.Errorf("unknown scenario %q (see hetpapitrace list)", name)
}
