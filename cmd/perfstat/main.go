// Command perfstat is a perf-stat-like tool for the simulated machines: it
// runs a workload and reports system-wide counters split per core type,
// the way "perf stat -a" reports hybrid events. It demonstrates the
// kernel-level (non-PAPI) path of measuring heterogeneous systems, where
// one event per PMU type must be opened and two or more reads gather the
// values.
//
// Usage:
//
//	perfstat [-machine NAME] [-workload spin|loop|stream|hpl] [-seconds S]
//	         [-cores LIST] [-sample-period N]
//
// With -sample-period the first task is additionally profiled perf-record
// style: one sampled instructions event per core-type PMU, reported as a
// per-CPU sample histogram.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/sim"
	"hetpapi/internal/sysfs"
	"hetpapi/internal/workload"
)

func main() {
	machineFlag := flag.String("machine", "raptorlake", "machine model")
	wl := flag.String("workload", "loop", "workload: spin, loop, stream or hpl")
	seconds := flag.Float64("seconds", 5, "how long to run (spin workload) / cap")
	coresFlag := flag.String("cores", "", "cpulist affinity (default: all cpus)")
	samplePeriod := flag.Uint64("sample-period", 0, "also sample the first task every N instructions")
	flag.Parse()
	if err := run(*machineFlag, *wl, *seconds, *coresFlag, *samplePeriod); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat:", err)
		os.Exit(1)
	}
}

func run(machineName, wl string, seconds float64, coresFlag string, samplePeriod uint64) error {
	var m *hw.Machine
	switch machineName {
	case "raptorlake":
		m = hw.RaptorLake()
	case "orangepi800":
		m = hw.OrangePi800()
	case "homogeneous":
		m = hw.Homogeneous()
	case "dimensity9000":
		m = hw.Dimensity9000()
	default:
		return fmt.Errorf("unknown machine %q", machineName)
	}
	s := sim.New(m, sim.DefaultConfig())

	affinity := hw.AllCPUs(m)
	if coresFlag != "" {
		ids, err := sysfs.ParseCPUList(coresFlag)
		if err != nil {
			return err
		}
		affinity = hw.NewCPUSet(ids...)
	}

	var tasks []workload.Task
	var done func() bool
	switch wl {
	case "spin":
		t := workload.NewSpin("spin", seconds)
		tasks = append(tasks, t)
		done = t.Done
	case "loop":
		t := workload.NewInstructionLoop("loop", 1e6, 1000)
		tasks = append(tasks, t)
		done = t.Done
	case "stream":
		t := workload.NewStream("stream", 5e9, 0.8, 42)
		tasks = append(tasks, t)
		done = t.Done
	case "hpl":
		h, err := workload.NewHPL(workload.HPLConfig{
			N: 9600, NB: 192, Threads: affinity.Count(), Strategy: workload.OpenBLASx86(), Seed: 42,
		})
		if err != nil {
			return err
		}
		tasks = h.Threads()
		done = h.Done
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}

	// Open system-wide events per CPU, one attr per core-type PMU — the
	// hybrid perf pattern.
	type counter struct {
		fd   int
		kind events.Kind
		typ  string
	}
	var counters []counter
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		t := m.TypeOf(cpu)
		tab := events.LookupPMU(t.PfmName)
		for _, name := range []string{"INST_RETIRED", "CPU_CLK_UNHALTED", "CPU_CYCLES",
			"BR_INST_RETIRED", "BR_PRED", "LONGEST_LAT_CACHE", "L2D_CACHE"} {
			def := tab.Lookup(name)
			if def == nil {
				continue
			}
			var bits uint64
			var kind events.Kind
			if u := def.DefaultUmask(); u != nil {
				bits, kind = u.Bits, u.Kind
			} else {
				kind = def.Kind
			}
			fd, err := s.Kernel.Open(perfevent.Attr{
				Type: t.PMU.PerfType, Config: events.Encode(def.Code, bits),
			}, -1, cpu, -1)
			if err != nil {
				return err
			}
			counters = append(counters, counter{fd: fd, kind: kind, typ: t.Name})
		}
	}

	var procs []int
	for _, t := range tasks {
		procs = append(procs, s.Spawn(t, affinity).PID)
	}

	// perf-record style profiling of the first task.
	var sampleFDs []int
	if samplePeriod > 0 && len(procs) > 0 {
		for i := range m.Types {
			t := &m.Types[i]
			tab := events.LookupPMU(t.PfmName)
			def := tab.Lookup("INST_RETIRED")
			if def == nil {
				continue
			}
			var bits uint64
			if u := def.DefaultUmask(); u != nil {
				bits = u.Bits
			}
			fd, err := s.Kernel.Open(perfevent.Attr{
				Type:         t.PMU.PerfType,
				Config:       events.Encode(def.Code, bits),
				SamplePeriod: samplePeriod,
			}, procs[0], -1, -1)
			if err != nil {
				return err
			}
			sampleFDs = append(sampleFDs, fd)
		}
	}

	if !s.RunUntil(done, seconds+3600) {
		fmt.Fprintln(os.Stderr, "perfstat: workload did not finish; reporting partial counts")
	}

	totals := map[string]map[events.Kind]uint64{}
	for _, c := range counters {
		v, err := s.Kernel.Read(c.fd)
		if err != nil {
			continue
		}
		if totals[c.typ] == nil {
			totals[c.typ] = map[events.Kind]uint64{}
		}
		totals[c.typ][c.kind] += v.Value
	}

	fmt.Printf("perfstat: %s on %s for %.3f simulated seconds\n\n", wl, machineName, s.Now())
	for i := range m.Types {
		name := m.Types[i].Name
		t := totals[name]
		fmt.Printf("%s (%s):\n", name, m.Types[i].PMU.Name)
		fmt.Printf("  %18d instructions\n", t[events.KindInstructions])
		fmt.Printf("  %18d cycles\n", t[events.KindCycles])
		if c := t[events.KindCycles]; c > 0 {
			fmt.Printf("  %18.2f IPC\n", float64(t[events.KindInstructions])/float64(c))
		}
		fmt.Printf("  %18d branches\n", t[events.KindBranches])
		fmt.Printf("  %18d LLC references\n", t[events.KindLLCRefs])
		fmt.Println()
	}
	fmt.Printf("%d syscall-equivalents issued by the measurement\n", s.Kernel.Syscalls())

	if len(sampleFDs) > 0 {
		byCPU := map[int]int{}
		total, lostTotal := 0, uint64(0)
		for _, fd := range sampleFDs {
			samples, lost, err := s.Kernel.ReadSamples(fd)
			if err != nil {
				return err
			}
			lostTotal += lost
			for _, smp := range samples {
				byCPU[smp.CPU]++
				total++
			}
		}
		fmt.Printf("\nprofile of pid %d: %d samples (period %d), %d lost\n",
			procs[0], total, samplePeriod, lostTotal)
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			n := byCPU[cpu]
			if n == 0 {
				continue
			}
			fmt.Printf("  cpu%-3d (%s) %6d samples  %5.1f%%\n",
				cpu, m.TypeOf(cpu).Name, n, 100*float64(n)/float64(total))
		}
	}
	return nil
}
