package main

import (
	"os"
	"testing"
)

func quiet(t *testing.T, fn func() error) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloads(t *testing.T) {
	for _, wl := range []string{"spin", "loop", "stream", "branch?"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			if wl == "branch?" {
				if err := run("raptorlake", wl, 0.1, "", 0); err == nil {
					t.Fatal("unknown workload must fail")
				}
				return
			}
			quiet(t, func() error { return run("raptorlake", wl, 0.2, "", 0) })
		})
	}
}

func TestHPLWorkloadOnCores(t *testing.T) {
	quiet(t, func() error { return run("orangepi800", "spin", 0.2, "4-5", 0) })
}

func TestProfileMode(t *testing.T) {
	quiet(t, func() error { return run("raptorlake", "loop", 1, "", 1_000_000) })
}

func TestErrors(t *testing.T) {
	if err := run("nope", "spin", 1, "", 0); err == nil {
		t.Error("unknown machine must fail")
	}
	if err := run("raptorlake", "spin", 1, "zzz", 0); err == nil {
		t.Error("bad cpu list must fail")
	}
}
