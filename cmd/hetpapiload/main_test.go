package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	got, err := parseMix("query=30, series=20,health=0")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	want := map[string]int{"query": 30, "series": 20, "health": 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseMix = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "query", "query=x", "query=-1", "bogus=10", "query=0,series=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted, want error", bad)
		}
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	cfg := config{
		duration: 2 * time.Second, rate: 100, seed: 42, gzipFrac: 0.5,
		mix: "query=30,series=20,fleet=15,metrics=15,status=10,health=10",
	}
	machines := []string{"m0000", "m0001", "m0002"}
	a, err := buildSchedule(cfg, machines)
	if err != nil {
		t.Fatalf("buildSchedule: %v", err)
	}
	b, _ := buildSchedule(cfg, machines)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 200 {
		t.Fatalf("schedule length = %d, want 200 (rate*duration)", len(a))
	}
	// Open-loop arrivals: strictly increasing at exactly 1/rate.
	period := 10 * time.Millisecond
	gz := 0
	for k, j := range a {
		if j.at != time.Duration(k)*period {
			t.Fatalf("job %d arrival = %v, want %v", k, j.at, time.Duration(k)*period)
		}
		if !strings.HasPrefix(j.target, j.endpoint) {
			t.Fatalf("job %d endpoint %q does not prefix target %q", k, j.endpoint, j.target)
		}
		if j.gzip {
			gz++
		}
	}
	if gz == 0 || gz == len(a) {
		t.Fatalf("gzip fraction 0.5 chose gzip on %d/%d requests", gz, len(a))
	}
	// A different seed reshuffles the mix.
	cfg.seed = 43
	c, _ := buildSchedule(cfg, machines)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBuildScheduleNeedsMachines(t *testing.T) {
	cfg := config{duration: time.Second, rate: 10, mix: "query=10"}
	if _, err := buildSchedule(cfg, nil); err == nil {
		t.Fatal("per-machine mix with no machines accepted, want error")
	}
	cfg.mix = "health=10"
	if _, err := buildSchedule(cfg, nil); err != nil {
		t.Fatalf("machine-free mix rejected: %v", err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(sorted, 50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := quantile(sorted, 99); got != 9 {
		t.Fatalf("p99 = %v, want 9", got)
	}
	if got := quantile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
}

// TestRunInProcess drives the whole harness — seeded fleet rig, open-loop
// load, /status self-validation, gates, JSON emission — end to end.
func TestRunInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	cfg := config{
		duration: 500 * time.Millisecond,
		rate:     200,
		workers:  4,
		mix:      "query=30,series=20,fleet=15,metrics=15,status=10,health=10",
		gzipFrac: 0.5,
		seed:     7,
		fleetN:   6,
		minQPS:   50,
		maxP99Ms: 1000,
		agreeFac: 3, agreeSlack: 25,
		out: out,
	}
	var log bytes.Buffer
	if err := run(context.Background(), cfg, &log); err != nil {
		t.Fatalf("run: %v\nlog:\n%s", err, log.String())
	}
	for _, want := range []string{"qps", "server view", "/query", "wrote "} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("log missing %q:\n%s", want, log.String())
		}
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading %s: %v", out, err)
	}
	var got benchOut
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatalf("bench JSON: %v", err)
	}
	sc, ok := got.Cases["inprocess-mix"]
	if !ok {
		t.Fatalf("bench JSON missing inprocess-mix case: %s", blob)
	}
	if sc.Requests != 100 {
		t.Errorf("requests = %d, want 100 (rate*duration)", sc.Requests)
	}
	if sc.Machines != 6 || sc.Workers != 4 {
		t.Errorf("machines/workers = %d/%d, want 6/4", sc.Machines, sc.Workers)
	}
	if sc.QPS < cfg.minQPS {
		t.Errorf("qps = %v below the %v gate the run claimed to pass", sc.QPS, cfg.minQPS)
	}
	if sc.ErrorPct != 0 {
		t.Errorf("error_pct = %v, want 0", sc.ErrorPct)
	}
	if !(sc.P50Ms > 0 && sc.P50Ms <= sc.P99Ms && sc.P99Ms <= sc.MaxMs) {
		t.Errorf("quantiles disordered: p50 %v p99 %v max %v", sc.P50Ms, sc.P99Ms, sc.MaxMs)
	}
	if sc.AllocsPerOp <= 0 {
		t.Errorf("allocs_per_op = %v, want > 0", sc.AllocsPerOp)
	}
	if got.Gate.Case != "inprocess-mix" || got.Gate.MinQPS != 50 || got.Gate.MaxP99Ms != 1000 {
		t.Errorf("gate = %+v, want inprocess-mix/50/1000", got.Gate)
	}
}

// TestRunGateViolation asserts the harness exits non-zero style (error)
// when a gate cannot be met, so the CI load-smoke step actually bites.
func TestRunGateViolation(t *testing.T) {
	cfg := config{
		duration: 200 * time.Millisecond,
		rate:     100,
		workers:  4,
		mix:      "health=1",
		seed:     1,
		fleetN:   2,
		minQPS:   1e9, // unreachable
		agreeFac: 3, agreeSlack: 25,
	}
	var log bytes.Buffer
	err := run(context.Background(), cfg, &log)
	if err == nil || !strings.Contains(err.Error(), "gate") {
		t.Fatalf("run with unreachable qps gate: err = %v, want gate violation", err)
	}
}
