// Command hetpapiload is the open-loop load harness for the hetpapid
// serving surface: it drives a seeded, deterministic request schedule
// (endpoint mix and gzip choice derived from -seed, arrivals at a fixed
// -rate) through N concurrent scrapers against either an in-process
// daemon rig or a remote daemon, and reports client-side p50/p99
// latency, error rate, throughput and allocations per request.
//
// Open loop means arrivals do not wait for completions: request k is
// due at k/rate seconds after start, and its latency is measured from
// that scheduled arrival, so queueing delay under overload is part of
// the number instead of silently throttling the offered load
// (coordinated omission).
//
// With no -addr the harness builds the in-process rig: a seeded fleet
// (fleet.Generate + fleet.Run) streams a realistic population into a
// store, and the real telemetry server — the same composed handler the
// daemon serves, observer included — listens on a loopback port. The
// harness then self-validates against the server's own /status view:
// per-endpoint request counts must match exactly, and the server-side
// p99 must agree with the client-side p99 within the stated bound
// (server_p99 <= client_p99 * -agree-factor + -agree-slack-ms; the
// client number includes scheduling delay and loopback I/O, so it
// upper-bounds the server's handler-side view).
//
// With -o the run's figures are written in the BENCH_10.json trajectory
// schema (qps, p50_ms, p99_ms, error_pct, allocs_per_op) with the
// -min-qps / -max-p99-ms gates recorded; the same gates are enforced on
// the run itself, so a CI load-smoke step fails when the serving path
// regresses.
//
// Usage:
//
//	hetpapiload [-addr host:port] [-duration 5s] [-rate 400] [-workers 8]
//	            [-mix query=30,series=20,fleet=15,metrics=15,status=10,health=10]
//	            [-gzip 0.5] [-seed 1] [-fleet-n 12]
//	            [-min-qps Q] [-max-p99-ms MS]
//	            [-agree-factor 3] [-agree-slack-ms 25]
//	            [-o BENCH_10.json] [-quiet]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hetpapi/internal/fleet"
	"hetpapi/internal/telemetry"
	"hetpapi/internal/telemetry/client"
	"hetpapi/internal/telemetry/httpobs"
)

type config struct {
	addr     string
	duration time.Duration
	rate     float64
	workers  int
	mix      string
	gzipFrac float64
	seed     int64
	fleetN   int

	minQPS     float64
	maxP99Ms   float64
	agreeFac   float64
	agreeSlack float64

	out   string
	quiet bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "daemon address host:port (empty: build the in-process rig)")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	flag.Float64Var(&cfg.rate, "rate", 400, "offered request rate per second (open loop)")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent scraper workers")
	flag.StringVar(&cfg.mix, "mix", "query=30,series=20,fleet=15,metrics=15,status=10,health=10",
		"endpoint mix as name=weight pairs (query, series, fleet, metrics, status, health)")
	flag.Float64Var(&cfg.gzipFrac, "gzip", 0.5, "fraction of requests sent with Accept-Encoding: gzip")
	flag.Int64Var(&cfg.seed, "seed", 1, "schedule seed (endpoint and gzip choices derive from it)")
	flag.IntVar(&cfg.fleetN, "fleet-n", 12, "in-process rig fleet size (ignored with -addr)")
	flag.Float64Var(&cfg.minQPS, "min-qps", 0, "fail the run if completed QPS falls below this (0 disables)")
	flag.Float64Var(&cfg.maxP99Ms, "max-p99-ms", 0, "fail the run if client-side p99 exceeds this (0 disables)")
	flag.Float64Var(&cfg.agreeFac, "agree-factor", 3, "client/server p99 agreement factor")
	flag.Float64Var(&cfg.agreeSlack, "agree-slack-ms", 25, "client/server p99 agreement slack in ms")
	flag.StringVar(&cfg.out, "o", "", "write the run's figures as a BENCH trajectory JSON file")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the per-endpoint breakdown")
	flag.Parse()

	if err := run(context.Background(), cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetpapiload:", err)
		os.Exit(1)
	}
}

// endpointKind is one entry of the -mix vocabulary.
type endpointKind struct {
	name string
	// build returns the request path for the k-th request, given the
	// machine pool and the schedule rng.
	build func(machines []string, rng *rand.Rand) string
}

var kinds = []endpointKind{
	{"query", func(ms []string, rng *rand.Rand) string {
		return "/query?machine=" + ms[rng.Intn(len(ms))] + "&series=power_w&agg=1"
	}},
	{"series", func(ms []string, rng *rand.Rand) string {
		return "/series?machine=" + ms[rng.Intn(len(ms))]
	}},
	{"fleet", func(ms []string, rng *rand.Rand) string { return "/fleet/query?rung=10s" }},
	{"metrics", func(ms []string, rng *rand.Rand) string { return "/metrics" }},
	{"status", func(ms []string, rng *rand.Rand) string { return "/status" }},
	{"health", func(ms []string, rng *rand.Rand) string { return "/health" }},
}

// parseMix turns "query=30,series=20" into per-kind weights.
func parseMix(mix string) (map[string]int, error) {
	known := map[string]bool{}
	for _, k := range kinds {
		known[k.name] = true
	}
	out := map[string]int{}
	total := 0
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown mix endpoint %q", name)
		}
		w, err := strconv.Atoi(weightStr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		out[name] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", mix)
	}
	return out, nil
}

// job is one scheduled request.
type job struct {
	at       time.Duration // offset from load start (the open-loop arrival)
	endpoint string        // accounting endpoint ("/query", "/metrics", ...)
	target   string        // full path+query
	gzip     bool
}

// buildSchedule derives the deterministic request schedule from the
// seed: arrival k at k/rate, endpoint by weighted draw, gzip by
// fraction. The same seed, rate, duration, mix and machine pool always
// produce the same schedule.
func buildSchedule(cfg config, machines []string) ([]job, error) {
	weights, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	needsMachines := weights["query"] > 0 || weights["series"] > 0
	if needsMachines && len(machines) == 0 {
		return nil, fmt.Errorf("mix needs per-machine endpoints but no machines were discovered")
	}
	var pick []endpointKind
	for _, k := range kinds {
		for i := 0; i < weights[k.name]; i++ {
			pick = append(pick, k)
		}
	}
	total := int(cfg.rate * cfg.duration.Seconds())
	if total <= 0 {
		return nil, fmt.Errorf("rate %g over %s yields no requests", cfg.rate, cfg.duration)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	period := time.Duration(float64(time.Second) / cfg.rate)
	jobs := make([]job, total)
	for k := 0; k < total; k++ {
		kind := pick[rng.Intn(len(pick))]
		target := kind.build(machines, rng)
		path := target
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		jobs[k] = job{
			at:       time.Duration(k) * period,
			endpoint: path,
			target:   target,
			gzip:     rng.Float64() < cfg.gzipFrac,
		}
	}
	return jobs, nil
}

// result is one completed request.
type result struct {
	endpoint string
	latency  time.Duration // from the scheduled arrival (includes queue delay)
	status   int
	err      error
}

// epStats accumulates one endpoint's client-side view.
type epStats struct {
	latMs  []float64
	errors int
}

func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// startInProcess builds the in-process rig: run a seeded fleet to
// stream a realistic population into a store, then serve the real
// composed handler on a loopback listener.
func startInProcess(ctx context.Context, cfg config, logw io.Writer) (addr string, machines []string, shutdown func(), err error) {
	store := telemetry.NewStore(telemetry.Config{Capacity: 4096, Shards: 8})
	f, err := fleet.Generate(fleet.GenConfig{
		Machines:   cfg.fleetN,
		Seed:       cfg.seed,
		StaggerSec: 0.2,
	})
	if err != nil {
		return "", nil, nil, err
	}
	streamer := fleet.NewStreamer(store, 0)
	if _, err := fleet.Run(ctx, f, fleet.RunConfig{Streamer: streamer}); err != nil {
		return "", nil, nil, fmt.Errorf("rig fleet run: %w", err)
	}
	for _, m := range f.Machines {
		machines = append(machines, m.ID)
	}
	api := telemetry.NewServer(store, 5*time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: api.Handler()}
	go srv.Serve(ln)
	fmt.Fprintf(logw, "hetpapiload: in-process rig: %d-machine fleet streamed, serving on %s\n",
		cfg.fleetN, ln.Addr())
	return ln.Addr().String(), machines, func() { srv.Close() }, nil
}

// servingCase is the BENCH trajectory schema for one load run; the
// field names match what bench_trajectory_test.go validates and gates.
type servingCase struct {
	Machines    int     `json:"machines"`
	Requests    int     `json:"requests"`
	RatePerSec  float64 `json:"rate_per_s"`
	Workers     int     `json:"workers"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	ErrorPct    float64 `json:"error_pct"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// ServerP99Ms is the worst per-endpoint p99 the daemon's own /status
	// reported for the run; P99AgreeMs is the largest (server - client)
	// per-endpoint p99 gap, negative when the client view upper-bounds
	// the server view everywhere (the expected steady state).
	ServerP99Ms float64 `json:"server_p99_ms"`
	P99AgreeMs  float64 `json:"p99_agree_ms"`
	// OverheadRatio is BenchmarkHTTPObsOverhead's instrumented/bare
	// request cost, merged into the committed trajectory file by hand
	// (the harness leaves it zero).
	OverheadRatio float64 `json:"overhead_ratio,omitempty"`
}

type benchOut struct {
	ID        string                 `json:"id"`
	Benchmark string                 `json:"benchmark"`
	Metric    string                 `json:"metric"`
	Cases     map[string]servingCase `json:"cases"`
	Gate      struct {
		Case             string  `json:"case"`
		MinQPS           float64 `json:"min_qps"`
		MaxP99Ms         float64 `json:"max_p99_ms"`
		MaxOverheadRatio float64 `json:"max_overhead_ratio,omitempty"`
	} `json:"gate"`
}

func run(ctx context.Context, cfg config, logw io.Writer) error {
	caseName := "remote-mix"
	var machines []string
	addr := cfg.addr
	if addr == "" {
		caseName = "inprocess-mix"
		var shutdown func()
		var err error
		addr, machines, shutdown, err = startInProcess(ctx, cfg, logw)
		if err != nil {
			return err
		}
		defer shutdown()
	} else {
		// Remote daemons list their registered collector machines.
		infos, err := client.New("http://"+addr).Machines(ctx)
		if err != nil {
			return fmt.Errorf("discovering machines: %w", err)
		}
		for _, m := range infos {
			machines = append(machines, m.Name)
		}
	}

	jobs, err := buildSchedule(cfg, machines)
	if err != nil {
		return err
	}
	base := "http://" + addr

	// The scrape pool. Compression is disabled on the transport so the
	// Accept-Encoding choice is the schedule's, not net/http's.
	transport := &http.Transport{
		DisableCompression:  true,
		MaxIdleConns:        cfg.workers * 2,
		MaxIdleConnsPerHost: cfg.workers * 2,
	}
	httpc := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	workers := cfg.workers
	if workers <= 0 {
		workers = 1
	}

	jobCh := make(chan job, len(jobs))
	results := make([]result, len(jobs))
	var ridx int64
	var resMu sync.Mutex
	var wg sync.WaitGroup

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+j.target, nil)
				if err == nil {
					if j.gzip {
						req.Header.Set("Accept-Encoding", "gzip")
					}
					var resp *http.Response
					resp, err = httpc.Do(req)
					if err == nil {
						_, err = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if err == nil && resp.StatusCode >= 400 {
							err = nil // counted via status, not as a transport error
						}
						lat := time.Since(start.Add(j.at))
						resMu.Lock()
						results[ridx] = result{endpoint: j.endpoint, latency: lat, status: resp.StatusCode}
						ridx++
						resMu.Unlock()
						continue
					}
				}
				lat := time.Since(start.Add(j.at))
				resMu.Lock()
				results[ridx] = result{endpoint: j.endpoint, latency: lat, err: err}
				ridx++
				resMu.Unlock()
			}
		}()
	}

	// Open-loop dispatcher: release each job at its scheduled arrival.
	// The channel is sized for the whole schedule, so a saturated pool
	// delays service, never arrival.
	for _, j := range jobs {
		if d := time.Until(start.Add(j.at)); d > 0 {
			time.Sleep(d)
		}
		select {
		case <-ctx.Done():
			close(jobCh)
			wg.Wait()
			return ctx.Err()
		case jobCh <- j:
		}
	}
	close(jobCh)
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	// Client-side accounting.
	perEp := map[string]*epStats{}
	var allMs []float64
	errors := 0
	for _, r := range results[:ridx] {
		es := perEp[r.endpoint]
		if es == nil {
			es = &epStats{}
			perEp[r.endpoint] = es
		}
		ms := r.latency.Seconds() * 1e3
		es.latMs = append(es.latMs, ms)
		allMs = append(allMs, ms)
		if r.err != nil || r.status >= 400 {
			es.errors++
			errors++
		}
	}
	sort.Float64s(allMs)
	sc := servingCase{
		Machines:    len(machines),
		Requests:    int(ridx),
		RatePerSec:  cfg.rate,
		Workers:     workers,
		QPS:         float64(ridx) / elapsed.Seconds(),
		P50Ms:       quantile(allMs, 50),
		P95Ms:       quantile(allMs, 95),
		P99Ms:       quantile(allMs, 99),
		ErrorPct:    100 * float64(errors) / float64(ridx),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ridx),
	}
	if n := len(allMs); n > 0 {
		sc.MaxMs = allMs[n-1]
	}

	// Self-validation against the server's own /status view.
	status, err := client.New(base).Status(ctx)
	if err != nil {
		return fmt.Errorf("fetching /status for self-validation: %w", err)
	}
	serverEp := map[string]httpobs.EndpointStatus{}
	for _, es := range status.Endpoints {
		serverEp[es.Endpoint] = es
	}
	agree := 0.0
	first := true
	for name, es := range perEp {
		srv, ok := serverEp[name]
		if !ok {
			return fmt.Errorf("self-validation: endpoint %s missing from server /status", name)
		}
		if cfg.addr == "" && srv.Requests != uint64(len(es.latMs)) {
			return fmt.Errorf("self-validation: %s: server counted %d requests, client sent %d",
				name, srv.Requests, len(es.latMs))
		}
		if srv.P99Ms > sc.ServerP99Ms {
			sc.ServerP99Ms = srv.P99Ms
		}
		sort.Float64s(es.latMs)
		clientP99 := quantile(es.latMs, 99)
		if gap := srv.P99Ms - clientP99; first || gap > agree {
			agree, first = gap, false
		}
		if srv.P99Ms > clientP99*cfg.agreeFac+cfg.agreeSlack {
			return fmt.Errorf("self-validation: %s: server p99 %.2fms outside the agreement bound (client p99 %.2fms, factor %g, slack %gms)",
				name, srv.P99Ms, clientP99, cfg.agreeFac, cfg.agreeSlack)
		}
	}
	sc.P99AgreeMs = agree

	fmt.Fprintf(logw, "hetpapiload: %d requests in %.2fs = %.0f qps | p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms | errors %.2f%% | %.0f allocs/op\n",
		sc.Requests, elapsed.Seconds(), sc.QPS, sc.P50Ms, sc.P95Ms, sc.P99Ms, sc.MaxMs, sc.ErrorPct, sc.AllocsPerOp)
	fmt.Fprintf(logw, "hetpapiload: server view: worst endpoint p99 %.2fms, p99 agreement gap %.2fms (bound: factor %g + %gms)\n",
		sc.ServerP99Ms, sc.P99AgreeMs, cfg.agreeFac, cfg.agreeSlack)
	if !cfg.quiet {
		names := make([]string, 0, len(perEp))
		for name := range perEp {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			es := perEp[name]
			fmt.Fprintf(logw, "hetpapiload:   %-14s %6d req  p50 %8.2fms  p99 %8.2fms  err %d\n",
				name, len(es.latMs), quantile(es.latMs, 50), quantile(es.latMs, 99), es.errors)
		}
	}

	if cfg.out != "" {
		out := benchOut{
			ID:        "pr10-serving",
			Benchmark: "hetpapiload",
			Metric:    "qps / p50_ms / p99_ms / error_pct / allocs_per_op",
			Cases:     map[string]servingCase{caseName: sc},
		}
		out.Gate.Case = caseName
		out.Gate.MinQPS = cfg.minQPS
		out.Gate.MaxP99Ms = cfg.maxP99Ms
		blob, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(logw, "hetpapiload: wrote %s\n", cfg.out)
	}

	// Gates: the same floors the trajectory file commits.
	if cfg.minQPS > 0 && sc.QPS < cfg.minQPS {
		return fmt.Errorf("gate: %.0f qps below the %.0f floor", sc.QPS, cfg.minQPS)
	}
	if cfg.maxP99Ms > 0 && sc.P99Ms > cfg.maxP99Ms {
		return fmt.Errorf("gate: p99 %.2fms above the %.0fms ceiling", sc.P99Ms, cfg.maxP99Ms)
	}
	if sc.ErrorPct > 0 {
		return fmt.Errorf("gate: %.2f%% of requests failed", sc.ErrorPct)
	}
	return nil
}
