// Command monhpl is the Go equivalent of the paper's mon_hpl.py artifact
// (A2): it starts an HPL run on a simulated machine, polls core
// frequencies, the package thermal zone and the RAPL energy counter at a
// fixed rate, waits for the package to settle at a target temperature
// between runs, and emits the averaged trace as CSV on stdout.
//
// Usage:
//
//	monhpl [-machine raptorlake|orangepi800] [-variant openblas|intel]
//	       [-cores LIST] [-n N] [-nb NB] [-n_runs R] [-settle_temp C]
//	       [-hz RATE]
//
// The -cores list uses the kernel cpulist syntax the real tool takes, e.g.
// "0,2,4,6,8,10,12,14,16-23".
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpapi/internal/exp"
	"hetpapi/internal/hw"
	"hetpapi/internal/stats"
	"hetpapi/internal/sysfs"
	"hetpapi/internal/trace"
	"hetpapi/internal/workload"
)

func main() {
	machineFlag := flag.String("machine", "raptorlake", "machine model")
	variant := flag.String("variant", "openblas", "HPL build: openblas or intel")
	coresFlag := flag.String("cores", "", "cpulist of CPUs to pin HPL threads to (default: one per core)")
	n := flag.Int("n", 0, "HPL problem size (default: paper value for the machine)")
	nb := flag.Int("nb", 0, "HPL block size (default: paper value)")
	nRuns := flag.Int("n_runs", 1, "number of runs to average")
	settle := flag.Float64("settle_temp", 35, "settle temperature between runs (degC)")
	hz := flag.Float64("hz", 1, "polling rate")
	seed := flag.Int64("seed", 2028, "base RNG seed")
	flag.Parse()

	if err := run(*machineFlag, *variant, *coresFlag, *n, *nb, *nRuns, *settle, *hz, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "monhpl:", err)
		os.Exit(1)
	}
}

func run(machineName, variant, coresFlag string, n, nb, nRuns int, settle, hz float64, seed int64) error {
	build := func() (*hw.Machine, workload.Strategy, int, int, error) {
		switch machineName {
		case "raptorlake":
			var strat workload.Strategy
			switch variant {
			case "openblas":
				strat = workload.OpenBLASx86()
			case "intel":
				strat = workload.IntelMKL()
			default:
				return nil, workload.Strategy{}, 0, 0, fmt.Errorf("unknown variant %q", variant)
			}
			defN, defNB := 57024, 192
			return hw.RaptorLake(), strat, defN, defNB, nil
		case "orangepi800":
			if variant != "openblas" {
				return nil, workload.Strategy{}, 0, 0, fmt.Errorf("the OrangePi only has the OpenBLAS build")
			}
			return hw.OrangePi800(), workload.OpenBLASArm(), 16384, 128, nil
		default:
			return nil, workload.Strategy{}, 0, 0, fmt.Errorf("unknown machine %q", machineName)
		}
	}
	m, strat, defN, defNB, err := build()
	if err != nil {
		return err
	}
	if n == 0 {
		n = defN
	}
	if nb == 0 {
		nb = defNB
	}
	cpus := m.FirstCPUPerCore()
	if coresFlag != "" {
		cpus, err = sysfs.ParseCPUList(coresFlag)
		if err != nil {
			return err
		}
		for _, c := range cpus {
			if c >= m.NumCPUs() {
				return fmt.Errorf("cpu %d out of range (machine has %d)", c, m.NumCPUs())
			}
		}
	}

	fmt.Fprintf(os.Stderr, "monhpl: %s, %s, N=%d NB=%d, %d thread(s) on cpus %s, %d run(s), settle %.0f degC\n",
		machineName, strat.Name, n, nb, len(cpus), sysfs.FormatCPUList(cpus), nRuns, settle)

	var runs [][]trace.Sample
	var gflops []float64
	for r := 0; r < nRuns; r++ {
		// Fresh machine per run; the settle protocol is modeled by
		// starting each run from a settled (ambient) package, like the
		// paper's wait-for-35C loop.
		machine, _, _, _, _ := build()
		res, err := exp.RunHPL(machine, strat, cpus, n, nb, seed+int64(r))
		if err != nil {
			return err
		}
		runs = append(runs, resample(res.Samples, hz))
		gflops = append(gflops, res.Gflops)
		fmt.Fprintf(os.Stderr, "monhpl: run %d: %.2f Gflops in %.1f s\n", r+1, res.Gflops, res.ElapsedSec)
	}

	avg := trace.AverageRuns(runs)
	if err := trace.WriteCSV(os.Stdout, m.NumCPUs(), avg); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "monhpl: mean %.2f Gflops (stddev %.2f) over %d run(s)\n",
		stats.Mean(gflops), stats.Stddev(gflops), nRuns)
	return nil
}

// resample keeps every k-th sample to approximate a non-1 Hz polling rate
// (the recorder itself polls at 1 Hz).
func resample(samples []trace.Sample, hz float64) []trace.Sample {
	if hz >= 1 || hz <= 0 {
		return samples
	}
	stride := int(1 / hz)
	var out []trace.Sample
	for i := 0; i < len(samples); i += stride {
		out = append(out, samples[i])
	}
	return out
}
