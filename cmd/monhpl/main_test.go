package main

import (
	"os"
	"testing"

	"hetpapi/internal/trace"
)

func quiet(t *testing.T, fn func() error) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorRaptorLake(t *testing.T) {
	quiet(t, func() error {
		return run("raptorlake", "intel", "0,2,4,6", 3840, 192, 1, 35, 1, 1)
	})
}

func TestMonitorOrangePi(t *testing.T) {
	quiet(t, func() error {
		return run("orangepi800", "openblas", "", 4096, 128, 2, 35, 0.5, 1)
	})
}

func TestMonitorErrors(t *testing.T) {
	if err := run("nope", "openblas", "", 0, 0, 1, 35, 1, 1); err == nil {
		t.Error("unknown machine must fail")
	}
	if err := run("raptorlake", "nope", "", 0, 0, 1, 35, 1, 1); err == nil {
		t.Error("unknown variant must fail")
	}
	if err := run("orangepi800", "intel", "", 0, 0, 1, 35, 1, 1); err == nil {
		t.Error("intel variant on ARM must fail")
	}
	if err := run("raptorlake", "intel", "0-99", 3840, 192, 1, 35, 1, 1); err == nil {
		t.Error("out-of-range cores must fail")
	}
	if err := run("raptorlake", "intel", "bogus", 3840, 192, 1, 35, 1, 1); err == nil {
		t.Error("malformed cores must fail")
	}
}

func TestResample(t *testing.T) {
	samples := sampleSeq(10)
	if got := resample(samples, 1); len(got) != 10 {
		t.Errorf("1 Hz resample changed length: %d", len(got))
	}
	if got := resample(samples, 0.5); len(got) != 5 {
		t.Errorf("0.5 Hz resample = %d samples, want 5", len(got))
	}
	if got := resample(samples, 0); len(got) != 10 {
		t.Errorf("0 Hz resample must be a no-op: %d", len(got))
	}
}

func sampleSeq(n int) (out []trace.Sample) {
	for i := 0; i < n; i++ {
		out = append(out, trace.Sample{TimeSec: float64(i)})
	}
	return
}
