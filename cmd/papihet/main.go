// Command papihet is the PAPI-style utility for the simulated machines:
// it reports hardware info (papi_hardware_info), lists native events and
// presets (papi_native_avail / papi_avail), runs the sysdetect component,
// and executes the paper's papi_hybrid_100m_one_eventset test.
//
// Usage:
//
//	papihet [-machine raptorlake|orangepi800|dimensity9000|homogeneous] [-legacy] <command>
//
// Commands:
//
//	info       print PAPI_get_hardware_info-style hardware description
//	avail      list the preset events and their native expansions
//	native     list every native event of every PMU
//	sysdetect  run the core-type detection heuristics
//	hybrid     run the papi_hybrid test (patched vs legacy PAPI)
//	cost       measure EventSet operation costs (papi_cost)
//	measure    run a workload with user-chosen events (papi_command_line)
//
// The measure command takes -events (comma-separated native event names or
// PAPI_* presets) and -wl (spin, loop, stream, branchy):
//
//	papihet -events PAPI_TOT_INS,adl_grt::TOPDOWN:SLOTS measure   # error: E-cores have no topdown
//	papihet -events PAPI_TOT_INS,PAPI_TOT_CYC,rapl::ENERGY_PKG measure
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hetpapi/internal/core"
	"hetpapi/internal/exp"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func machineByName(name string) (*hw.Machine, error) {
	switch name {
	case "raptorlake":
		return hw.RaptorLake(), nil
	case "orangepi800":
		return hw.OrangePi800(), nil
	case "homogeneous":
		return hw.Homogeneous(), nil
	case "dimensity9000":
		return hw.Dimensity9000(), nil
	default:
		return nil, fmt.Errorf("unknown machine %q (want raptorlake, orangepi800, dimensity9000 or homogeneous)", name)
	}
}

func main() {
	machineFlag := flag.String("machine", "raptorlake", "machine model to simulate")
	legacyFlag := flag.Bool("legacy", false, "run in PAPI 7.1 compatibility mode (no hybrid support)")
	eventsFlag := flag.String("events", "PAPI_TOT_INS,PAPI_TOT_CYC", "events for the measure command")
	wlFlag := flag.String("wl", "loop", "workload for the measure command: spin, loop, stream or branchy")
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.Arg(0) == "measure" {
		if err := runMeasure(*machineFlag, *legacyFlag, *eventsFlag, *wlFlag); err != nil {
			fmt.Fprintln(os.Stderr, "papihet:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*machineFlag, *legacyFlag, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "papihet:", err)
		os.Exit(1)
	}
}

func run(machineName string, legacy bool, command string) error {
	m, err := machineByName(machineName)
	if err != nil {
		return err
	}
	s := sim.New(m, sim.DefaultConfig())
	lib, err := core.Init(s, core.Options{Legacy: legacy})
	if err != nil {
		return err
	}

	switch command {
	case "info":
		printInfo(lib)
	case "avail":
		printAvail(lib)
	case "native":
		printNative(lib)
	case "sysdetect":
		return printSysdetect(lib)
	case "hybrid":
		return runHybrid(machineName)
	case "cost":
		return runCost(machineName)
	default:
		return fmt.Errorf("unknown command %q", command)
	}
	return nil
}

func printInfo(lib *core.Library) {
	info := lib.HardwareInfo()
	fmt.Printf("Vendor          : %s\n", info.Vendor)
	fmt.Printf("Model           : %s\n", info.Model)
	fmt.Printf("Architecture    : %s\n", info.Arch)
	fmt.Printf("Family/Model/Step: %d/%d/%d\n", info.Family, info.ModelID, info.Stepping)
	fmt.Printf("CPUs            : %d (%d cores)\n", info.TotalCPUs, info.Cores)
	fmt.Printf("Memory          : %.0f GB\n", info.MemGB)
	fmt.Printf("Hybrid          : %v\n", info.Hybrid)
	for _, ct := range info.CoreTypes {
		fmt.Printf("  core type %-8s (%s, %s class): pmu=%s pfm=%s max=%.0f MHz cpus=%v\n",
			ct.Name, ct.Microarch, ct.Class, ct.PMUName, ct.PfmName, ct.MaxMHz, ct.CPUs)
	}
	if lib.Legacy() {
		fmt.Println("  (legacy mode: per-core-type reporting unavailable, see paper section V.1)")
	}
}

func printAvail(lib *core.Library) {
	fmt.Println("Preset          Avail  Derived  Partial  Natives")
	for _, p := range lib.Presets() {
		fmt.Printf("%-15s %-6v %-8v %-8v %v\n", p.Name, p.Available, p.Derived, p.Partial, p.Natives)
	}
}

func printNative(lib *core.Library) {
	for _, pmu := range lib.Pfm().PMUs() {
		kind := "uncore"
		if pmu.IsCore {
			kind = "core"
		}
		fmt.Printf("PMU %s (%s, %s, perf type %d, %d events, default=%v)\n",
			pmu.Name, pmu.Desc, kind, pmu.PerfType, pmu.NumEvents, pmu.IsDefault)
		evs, err := lib.Pfm().EventsForPMU(pmu.Name)
		if err != nil {
			continue
		}
		for _, e := range evs {
			fmt.Printf("  %s\n", e)
		}
	}
}

func printSysdetect(lib *core.Library) error {
	res, err := lib.SysDetect()
	if err != nil {
		return err
	}
	fmt.Printf("detection strategy: %s\n", res.Strategy)
	for _, g := range res.Groups {
		fmt.Printf("  %-20s cpus %v\n", g.Key, g.CPUs)
	}
	return nil
}

func runCost(machineName string) error {
	if machineName != "raptorlake" {
		return fmt.Errorf("the cost measurement is defined for the raptorlake machine")
	}
	res, err := exp.Overhead(exp.Default())
	if err != nil {
		return err
	}
	fmt.Println("papi_cost: syscall-equivalents per EventSet operation")
	fmt.Print(res)

	// Wall-clock latency of the measurement paths on this host.
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	lib, err := core.Init(s, core.Options{})
	if err != nil {
		return err
	}
	p := s.Spawn(workload.NewSpin("w", 1e12), hw.NewCPUSet(0))
	es := lib.CreateEventSet()
	if err := es.Attach(p.PID); err != nil {
		return err
	}
	for _, n := range []string{
		"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
		"adl_grt::INST_RETIRED:ANY", "adl_grt::CPU_CLK_UNHALTED:CORE",
	} {
		if err := es.AddNamed(n); err != nil {
			return err
		}
	}
	if err := es.Start(); err != nil {
		return err
	}
	s.RunFor(0.05)
	const iters = 200000
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := es.Read(); err != nil {
			return err
		}
	}
	readNs := time.Since(t0).Nanoseconds() / iters
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := es.ReadFast(); err != nil {
			return err
		}
	}
	fastNs := time.Since(t0).Nanoseconds() / iters
	if _, err := es.Stop(); err != nil {
		return err
	}
	if err := es.Cleanup(); err != nil {
		return err
	}
	fmt.Printf("\nhost-measured latency (multi-PMU 4-event set, %d iterations):\n", iters)
	fmt.Printf("  PAPI_read           %6d ns\n", readNs)
	fmt.Printf("  PAPI_read (rdpmc)   %6d ns\n", fastNs)
	return nil
}

// runMeasure is the papi_command_line equivalent: caliper a workload with
// an arbitrary list of presets and native events.
func runMeasure(machineName string, legacy bool, eventsList, wl string) error {
	m, err := machineByName(machineName)
	if err != nil {
		return err
	}
	s := sim.New(m, sim.DefaultConfig())
	lib, err := core.Init(s, core.Options{Legacy: legacy})
	if err != nil {
		return err
	}

	var task workload.Task
	switch wl {
	case "spin":
		task = workload.NewSpin("spin", 2)
	case "loop":
		task = workload.NewInstructionLoop("loop", 1e6, 2000)
	case "stream":
		task = workload.NewStream("stream", 2e9, 0.8, 42)
	case "branchy":
		task = workload.NewBranchy("branchy", 2e9, 42)
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}
	proc := s.Spawn(task, hw.AllCPUs(m))

	es := lib.CreateEventSet()
	if err := es.Attach(proc.PID); err != nil {
		return err
	}
	for _, name := range strings.Split(eventsList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var err error
		if strings.HasPrefix(name, "PAPI_") {
			err = es.AddPreset(core.Preset(name))
		} else {
			err = es.AddNamed(name)
		}
		if err != nil {
			return fmt.Errorf("adding %q: %w", name, err)
		}
	}
	startUs := lib.RealUsec()
	if err := es.Start(); err != nil {
		return err
	}
	if !s.RunUntil(task.Done, 600) {
		return fmt.Errorf("workload did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		return err
	}
	elapsedUs := lib.RealUsec() - startUs
	defer es.Cleanup()

	fmt.Printf("measured %s for %d us on %s (%d events in %d perf groups):\n",
		wl, elapsedUs, machineName, es.NumEvents(), es.NumGroups())
	for i, name := range es.Names() {
		fmt.Printf("  %-44s %18d\n", name, vals[i])
	}
	return nil
}

func runHybrid(machineName string) error {
	if machineName != "raptorlake" {
		return fmt.Errorf("the hybrid test is defined for the raptorlake machine")
	}
	res, err := exp.HybridTest(exp.Default())
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}
