package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout while fn runs and returns what was printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	outCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 1<<20)
		var sb strings.Builder
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		outCh <- sb.String()
	}()
	errCh <- fn()
	w.Close()
	os.Stdout = old
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return <-outCh
}

func TestInfoCommand(t *testing.T) {
	out := capture(t, func() error { return run("raptorlake", false, "info") })
	for _, want := range []string{"GenuineIntel", "Hybrid          : true", "cpu_core", "cpu_atom"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q", want)
		}
	}
	out = capture(t, func() error { return run("raptorlake", true, "info") })
	if !strings.Contains(out, "legacy mode") {
		t.Error("legacy info must note the reporting gap")
	}
}

func TestAvailCommand(t *testing.T) {
	out := capture(t, func() error { return run("orangepi800", false, "avail") })
	if !strings.Contains(out, "PAPI_TOT_INS") {
		t.Error("avail output missing PAPI_TOT_INS")
	}
}

func TestNativeCommandLists(t *testing.T) {
	out := capture(t, func() error { return run("homogeneous", false, "native") })
	if !strings.Contains(out, "skl::INST_RETIRED:ANY") {
		t.Error("native listing missing skl events")
	}
}

func TestSysdetectCommand(t *testing.T) {
	out := capture(t, func() error { return run("orangepi800", false, "sysdetect") })
	if !strings.Contains(out, "pmu:armv8_cortex_a72") {
		t.Errorf("sysdetect output: %q", out)
	}
}

func TestUnknownInputs(t *testing.T) {
	if err := run("nope", false, "info"); err == nil {
		t.Error("unknown machine must fail")
	}
	if err := run("raptorlake", false, "nope"); err == nil {
		t.Error("unknown command must fail")
	}
	if err := run("orangepi800", false, "hybrid"); err == nil {
		t.Error("hybrid on non-raptorlake must fail")
	}
	if err := run("orangepi800", false, "cost"); err == nil {
		t.Error("cost on non-raptorlake must fail")
	}
}

func TestNativeCommandUnknownMachineError(t *testing.T) {
	if _, err := machineByName("dimensity"); err == nil {
		t.Error("machineByName must reject unknown names")
	}
}

func TestMeasureCommand(t *testing.T) {
	out := capture(t, func() error {
		return runMeasure("raptorlake", false, "PAPI_TOT_INS,PAPI_TOT_CYC,rapl::ENERGY_PKG", "loop")
	})
	for _, want := range []string{"PAPI_TOT_INS", "rapl::ENERGY_PKG", "perf groups"} {
		if !strings.Contains(out, want) {
			t.Errorf("measure output missing %q", want)
		}
	}
}

func TestMeasureCommandErrors(t *testing.T) {
	if err := runMeasure("nope", false, "PAPI_TOT_INS", "loop"); err == nil {
		t.Error("unknown machine must fail")
	}
	if err := runMeasure("raptorlake", false, "PAPI_TOT_INS", "nope"); err == nil {
		t.Error("unknown workload must fail")
	}
	if err := runMeasure("raptorlake", false, "adl_grt::TOPDOWN:SLOTS", "loop"); err == nil {
		t.Error("E-core topdown must fail (the paper's canonical unavailable event)")
	}
	if err := runMeasure("raptorlake", false, "PAPI_NOPE", "loop"); err == nil {
		t.Error("unknown preset must fail")
	}
	// Legacy mode: cross-PMU event list must conflict.
	if err := runMeasure("raptorlake", true,
		"adl_glc::INST_RETIRED:ANY,adl_grt::INST_RETIRED:ANY", "loop"); err == nil {
		t.Error("legacy cross-PMU list must fail")
	}
}
