package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGatePasses(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"run", "-model", "raptorlake", "-max-rel-err", "0.02"}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"MODEL", "instructions", "0 failed", "digest: "} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunUnknownModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"run", "-model", "pentium4"}, &out); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// TestScorecardMatchesCommittedGolden: the CLI artifact must be the same
// bytes as the golden committed by the internal/validate test suite.
func TestScorecardMatchesCommittedGolden(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"scorecard", "-model", "orangepi800", "-o", dir}, &out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "scorecard_orangepi800.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "validate", "testdata", "scorecard_orangepi800.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("CLI scorecard differs from the committed golden artifact")
	}
}

func TestDiff(t *testing.T) {
	golden := filepath.Join("..", "..", "internal", "validate", "testdata", "scorecard_raptorlake.golden.json")
	var out bytes.Buffer
	if err := run([]string{"diff", golden, golden}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Errorf("identical diff not reported: %s", out.String())
	}

	// A doctored copy must show up as a changed row.
	b, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	doctored := bytes.Replace(b, []byte(`"observed": "`), []byte(`"observed": "9`), 1)
	path := filepath.Join(t.TempDir(), "doctored.json")
	if err := os.WriteFile(path, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"diff", golden, path}, &out)
	if err == nil {
		t.Error("diff of differing scorecards should exit non-zero")
	}
	if !strings.Contains(out.String(), "~ ") || !strings.Contains(out.String(), "rows changed") {
		t.Errorf("doctored diff not detected:\n%s", out.String())
	}
}

func TestCalibrateConverges(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"calibrate", "-model", "orangepi800", "-seed", "7"}, &out); err != nil {
		t.Fatalf("calibrate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "converged true") {
		t.Errorf("convergence not reported:\n%s", out.String())
	}
}
