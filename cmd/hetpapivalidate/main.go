// Command hetpapivalidate is the counter-accuracy validation front end:
// it runs micro-workloads whose event counts are known in closed form
// through the full measurement stack and scores what the PAPI layer
// reports against the oracles — per event, per core type, per machine
// model, clean and under multiplexing, fault plans and profiler
// sampling. It also drives the model-calibration loop, which fits a
// perturbed machine model back to published targets.
//
// Usage:
//
//	hetpapivalidate run [-model NAME|all] [-json] [-max-rel-err F]
//	hetpapivalidate scorecard [-model NAME|all] [-o DIR]
//	hetpapivalidate calibrate [-model NAME] [-seed N] [-tol F] [-json]
//	hetpapivalidate diff OLD.json NEW.json
//
// run executes the full oracle suite and prints the accuracy scorecard
// (human table, or the canonical JSON with -json); it exits nonzero if
// any row fails or the worst clean relative error exceeds -max-rel-err.
// scorecard writes the byte-reproducible golden artifact per model — the
// same bytes committed under internal/validate/testdata. calibrate
// perturbs the named model's calibratable parameters, fits them back to
// targets measured on the pristine model, and reports the recovered
// parameters and residual. diff compares two scorecard artifacts row by
// row.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hetpapi/internal/calibration"
	"hetpapi/internal/validate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetpapivalidate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hetpapivalidate <run|scorecard|calibrate|diff> [args]")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], out)
	case "scorecard":
		return cmdScorecard(args[1:], out)
	case "calibrate":
		return cmdCalibrate(args[1:], out)
	case "diff":
		return cmdDiff(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run, scorecard, calibrate or diff)", args[0])
	}
}

// sourcesFor resolves -model: a registry name or "all".
func sourcesFor(model string) ([]validate.ModelSource, error) {
	if model == "all" || model == "" {
		return validate.StandardSources(), nil
	}
	src, ok := validate.SourceFor(model)
	if !ok {
		var names []string
		for _, s := range validate.StandardSources() {
			names = append(names, s.Name)
		}
		return nil, fmt.Errorf("unknown model %q (have %v, or \"all\")", model, names)
	}
	return []validate.ModelSource{src}, nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	model := fs.String("model", "all", "machine model name, or \"all\"")
	asJSON := fs.Bool("json", false, "emit the canonical JSON scorecard instead of the table")
	maxRel := fs.Float64("max-rel-err", 0, "fail if the worst clean relative error exceeds this (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srcs, err := sourcesFor(*model)
	if err != nil {
		return err
	}
	card, err := validate.BuildScorecard(srcs)
	if err != nil {
		return err
	}
	if *asJSON {
		b, err := json.MarshalIndent(card, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", b)
	} else {
		printCard(out, card)
	}
	if !card.AllPass() {
		return fmt.Errorf("%d of %d rows failed", card.Summary.Failed, card.Summary.Rows)
	}
	if *maxRel > 0 && card.MaxCleanRelErr() > *maxRel {
		return fmt.Errorf("max clean relative error %s exceeds gate %g (worst: %s)",
			card.Summary.MaxCleanRel, *maxRel, card.Summary.WorstCleanRow)
	}
	return nil
}

func printCard(out io.Writer, card *validate.Scorecard) {
	fmt.Fprintf(out, "%-14s %-9s %-8s %-7s %-12s %18s %18s %10s %12s %s\n",
		"MODEL", "TYPE", "WORK", "MODE", "EVENT", "EXPECTED", "OBSERVED", "REL_ERR", "BOUND", "PASS")
	for _, r := range card.Rows {
		pass := "ok"
		if !r.Pass {
			pass = "FAIL"
		}
		if r.Degraded {
			pass += " (degraded)"
		}
		fmt.Fprintf(out, "%-14s %-9s %-8s %-7s %-12s %18s %18s %10s %12d %s\n",
			r.Model, r.CoreType, r.Workload, r.Mode, r.Event, r.Expected, r.Observed, r.RelErr, r.Bound, pass)
	}
	fmt.Fprintf(out, "\noverhead (monitored vs bare):\n")
	for _, o := range card.Overhead {
		fmt.Fprintf(out, "  %-14s %-9s ticks %d vs %d, elapsed delta %s s, energy delta %s J\n",
			o.Model, o.CoreType, o.TicksMonitored, o.TicksBare, o.ElapsedDeltaS, o.EnergyDeltaJ)
	}
	fmt.Fprintf(out, "sampling:\n")
	for _, s := range card.Sampling {
		pass := "ok"
		if !s.Pass {
			pass = "FAIL"
		}
		fmt.Fprintf(out, "  %-14s %-9s emitted %d lost %d (max %d) %s\n",
			s.Model, s.CoreType, s.Emitted, s.Lost, s.ExpectedMax, pass)
	}
	fmt.Fprintf(out, "\n%d rows: %d passed, %d failed; worst clean rel err %s (%s)\n",
		card.Summary.Rows, card.Summary.Passed, card.Summary.Failed,
		card.Summary.MaxCleanRel, card.Summary.WorstCleanRow)
	if card.Host != nil {
		fmt.Fprintf(out, "host: %d runs in %.1f ms (%.0f ns/tick monitored, %.0f bare)\n",
			card.Host.Runs, float64(card.Host.TotalNs)/1e6, card.Host.NsPerSimTick, card.Host.BareNsPerTick)
	}
	fmt.Fprintf(out, "digest: %s\n", card.Digest)
}

func cmdScorecard(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scorecard", flag.ContinueOnError)
	model := fs.String("model", "all", "machine model name, or \"all\"")
	dir := fs.String("o", "", "write scorecard_<model>.golden.json artifacts into this directory (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srcs, err := sourcesFor(*model)
	if err != nil {
		return err
	}
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
	}
	for _, src := range srcs {
		card, err := validate.BuildScorecard([]validate.ModelSource{src})
		if err != nil {
			return err
		}
		b := card.GoldenBytes()
		if *dir == "" {
			if _, err := out.Write(b); err != nil {
				return err
			}
			continue
		}
		path := filepath.Join(*dir, fmt.Sprintf("scorecard_%s.golden.json", src.Name))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (digest %s)\n", path, card.Digest[:12])
	}
	return nil
}

func cmdCalibrate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	model := fs.String("model", "raptorlake", "machine model to calibrate")
	seed := fs.Int64("seed", 42, "perturbation seed")
	tol := fs.Float64("tol", 0.02, "relative convergence tolerance")
	asJSON := fs.Bool("json", false, "emit the fit report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, ok := validate.SourceFor(*model)
	if !ok {
		return fmt.Errorf("unknown model %q", *model)
	}
	targets, err := calibration.MeasureTargets(src.Name, src.Make)
	if err != nil {
		return err
	}
	perturbed := calibration.Perturb(src.Make(), *seed)
	rep, err := calibration.Fit(targets, perturbed, calibration.Options{TolRel: *tol})
	if err != nil {
		return err
	}
	if *asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", b)
	} else {
		for _, tr := range rep.Types {
			fmt.Fprintf(out, "%-10s %d sweeps, residual %.5f\n", tr.TypeName, tr.Iters, tr.Residual)
			fmt.Fprintf(out, "  ipc      %8.4f -> %8.4f\n", tr.Initial.BaseIPC, tr.Fitted.BaseIPC)
			fmt.Fprintf(out, "  penalty  %8.2f -> %8.2f cycles\n", tr.Initial.LLCMissPenaltyCycles, tr.Fitted.LLCMissPenaltyCycles)
			fmt.Fprintf(out, "  hpl eff  %8.4f -> %8.4f\n", tr.Initial.HPLEfficiency, tr.Fitted.HPLEfficiency)
			fmt.Fprintf(out, "  dyn W    %8.2f -> %8.2f\n", tr.Initial.DynWattsAtMax, tr.Fitted.DynWattsAtMax)
		}
		fmt.Fprintf(out, "max residual %.5f, converged %v\n", rep.MaxResidual, rep.Converged)
	}
	if !rep.Converged {
		return fmt.Errorf("calibration did not converge (max residual %.4f > %g)", rep.MaxResidual, *tol)
	}
	return nil
}

func cmdDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: hetpapivalidate diff OLD.json NEW.json")
	}
	old, err := loadCard(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := loadCard(fs.Arg(1))
	if err != nil {
		return err
	}
	// Recompute digests from content — the stored field could be stale
	// or tampered with.
	oldDig, curDig := old.ComputeDigest(), cur.ComputeDigest()
	if oldDig == curDig {
		fmt.Fprintf(out, "identical (digest %s)\n", oldDig[:12])
		return nil
	}
	key := func(r validate.Row) string {
		return fmt.Sprintf("%s/%s/%s/%s/%s", r.Model, r.CoreType, r.Workload, r.Mode, r.Event)
	}
	oldRows := map[string]validate.Row{}
	for _, r := range old.Rows {
		oldRows[key(r)] = r
	}
	changed := 0
	for _, r := range cur.Rows {
		k := key(r)
		o, ok := oldRows[k]
		if !ok {
			fmt.Fprintf(out, "+ %s (new row, pass=%v)\n", k, r.Pass)
			changed++
			continue
		}
		delete(oldRows, k)
		if o.Observed != r.Observed || o.Pass != r.Pass || o.Bound != r.Bound {
			fmt.Fprintf(out, "~ %s: observed %s -> %s, bound %d -> %d, pass %v -> %v\n",
				k, o.Observed, r.Observed, o.Bound, r.Bound, o.Pass, r.Pass)
			changed++
		}
	}
	for k, o := range oldRows {
		fmt.Fprintf(out, "- %s (removed, was pass=%v)\n", k, o.Pass)
		changed++
	}
	fmt.Fprintf(out, "%d rows changed; digest %s -> %s\n", changed, oldDig[:12], curDig[:12])
	fmt.Fprintf(out, "worst clean rel err %s -> %s\n", old.Summary.MaxCleanRel, cur.Summary.MaxCleanRel)
	// Like cmp/diff: differing inputs are a non-zero exit so the command
	// can gate scripts directly.
	return fmt.Errorf("scorecards differ (%d rows)", changed)
}

func loadCard(path string) (*validate.Scorecard, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var card validate.Scorecard
	if err := json.Unmarshal(b, &card); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &card, nil
}
