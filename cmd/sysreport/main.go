// Command sysreport dumps the synthetic sysfs/procfs discovery surface of
// a simulated machine and compares every heterogeneous core detection
// strategy from section IV.B of the paper, showing which work and which
// fail on each machine.
//
// Usage:
//
//	sysreport [-machine raptorlake|orangepi800|homogeneous] [-tree]
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"

	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/sysfs"
)

func main() {
	machineFlag := flag.String("machine", "raptorlake", "machine model")
	tree := flag.Bool("tree", false, "dump every file in the synthetic tree")
	flag.Parse()
	if err := run(*machineFlag, *tree); err != nil {
		fmt.Fprintln(os.Stderr, "sysreport:", err)
		os.Exit(1)
	}
}

func run(machineName string, tree bool) error {
	var m *hw.Machine
	switch machineName {
	case "raptorlake":
		m = hw.RaptorLake()
	case "orangepi800":
		m = hw.OrangePi800()
	case "homogeneous":
		m = hw.Homogeneous()
	case "dimensity9000":
		m = hw.Dimensity9000()
	default:
		return fmt.Errorf("unknown machine %q", machineName)
	}
	s := sim.New(m, sim.DefaultConfig())

	fmt.Printf("machine: %s (%s)\n\n", m.Name, m.CPUModel)

	fmt.Println("PMUs found by scanning sys/devices (the perf tool's method):")
	pmus, err := sysfs.DetectPMUs(s.FS)
	if err != nil {
		return err
	}
	for _, p := range pmus {
		fmt.Printf("  %-20s type=%-3d cpus=%s\n", p.Name, p.Type, sysfs.FormatCPUList(p.CPUs))
	}
	fmt.Println()

	fmt.Println("detection strategies (section IV.B):")
	type strat struct {
		name string
		fn   func(fs.FS) ([]sysfs.Group, error)
	}
	for _, st := range []strat{
		{"pmu scan", sysfs.DetectByPMU},
		{"cpu_capacity", sysfs.DetectByCapacity},
		{"proc/cpuinfo", sysfs.DetectByCPUInfo},
		{"max frequency", sysfs.DetectByMaxFreq},
	} {
		groups, err := st.fn(s.FS)
		if err != nil {
			fmt.Printf("  %-14s: unavailable (%v)\n", st.name, err)
			continue
		}
		fmt.Printf("  %-14s: %d group(s)\n", st.name, len(groups))
		for _, g := range groups {
			fmt.Printf("      %-22s cpus %s\n", g.Key, sysfs.FormatCPUList(g.CPUs))
		}
	}
	fmt.Println()

	fmt.Println("CPUID hybrid leaf (Intel only):")
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		ct, ok := s.FS.CPUIDHybrid(cpu)
		if !ok {
			fmt.Println("  not available on this machine")
			break
		}
		if cpu == 0 || cpu == m.NumCPUs()-1 {
			fmt.Printf("  cpu%-3d leaf 0x1A EAX[31:24] = %#02x\n", cpu, ct)
		}
	}
	fmt.Println()

	if tree {
		fmt.Println("synthetic tree:")
		err := fs.WalkDir(s.FS, ".", func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			content, _ := s.FS.ReadFile(p)
			if len(content) > 60 {
				content = content[:57] + "..."
			}
			fmt.Printf("  /%-60s %s\n", p, content)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
