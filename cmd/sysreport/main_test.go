package main

import (
	"os"
	"testing"
)

func quiet(t *testing.T, fn func() error) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
}

func TestReportAllMachines(t *testing.T) {
	for _, m := range []string{"raptorlake", "orangepi800", "homogeneous"} {
		m := m
		t.Run(m, func(t *testing.T) {
			quiet(t, func() error { return run(m, true) })
		})
	}
}

func TestUnknownMachine(t *testing.T) {
	if err := run("nope", false); err == nil {
		t.Fatal("unknown machine must fail")
	}
}
