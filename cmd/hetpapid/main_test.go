package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hetpapi/internal/fleet"
	"hetpapi/internal/profile"
	"hetpapi/internal/telemetry"
	"hetpapi/internal/telemetry/client"
	"hetpapi/internal/validate"
)

func TestResolveSpecs(t *testing.T) {
	all, err := resolveSpecs("all")
	if err != nil || len(all) < 4 {
		t.Fatalf("all -> %d specs, err %v", len(all), err)
	}
	two, err := resolveSpecs("homogeneous-powercap, dimensity-mixed-injects")
	if err != nil || len(two) != 2 || two[0].Name != "homogeneous-powercap" {
		t.Fatalf("pair -> %+v err %v", two, err)
	}
	if _, err := resolveSpecs("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario err = %v", err)
	}
	if _, err := resolveSpecs(" , "); err == nil {
		t.Fatal("empty selection must error")
	}
}

// TestDaemonLiveQueries boots the daemon on two concurrent machines in
// loop mode, queries /query and /metrics while collection is hot, checks
// the self-overhead gauge is reporting, then shuts down gracefully.
func TestDaemonLiveQueries(t *testing.T) {
	cfg := config{
		addr:       "127.0.0.1:0",
		scenarios:  "homogeneous-powercap,dimensity-mixed-injects",
		capacity:   2048,
		downsample: 1,
		shards:     8,
		every:      1,
		loop:       true, // keep collection hot for the whole test
		reqTimeout: 5 * time.Second,
		traceCap:   1024,
		sloLatMs:   250,
		sloErrPct:  1,
		profile:    true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, testWriter{t}, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	c := client.New("http://" + addr)
	rctx := context.Background()

	if h, err := c.Health(rctx); err != nil || h.Status != "ok" || h.Machines != 2 {
		t.Fatalf("health %+v err %v", h, err)
	}

	// Wait for both collectors to have ingested ticks.
	deadline := time.Now().Add(15 * time.Second)
	var machines []telemetry.MachineInfo
	for time.Now().Before(deadline) {
		ms, err := c.Machines(rctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 2 && ms[0].Ticks > 0 && ms[1].Ticks > 0 {
			machines = ms
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if machines == nil {
		t.Fatal("collectors never reported ticks")
	}
	for _, m := range machines {
		if m.OverheadPerTickSec <= 0 {
			t.Errorf("machine %s reports no per-tick ingestion overhead: %+v", m.Name, m)
		}
		if m.OverheadRatio <= 0 || m.OverheadRatio > 1 {
			t.Errorf("machine %s overhead ratio %g outside (0,1]", m.Name, m.OverheadRatio)
		}
	}

	// Live series query on the hybrid machine while its run is hot.
	q, err := c.Query(rctx, telemetry.QueryRequest{
		Machine: "dimensity-mixed-injects", Series: "power_w", Agg: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Points) == 0 || q.Aggregate == nil || q.Aggregate.Count == 0 {
		t.Fatalf("live power query empty: %+v", q)
	}

	// Per-core-type counter aggregation: the Dimensity has three core
	// types, and each eventually counts instructions (the prime core only
	// gets work once the scenario's late-spin workload starts at t=3s
	// simulated, so poll). This wait gets its own generous deadline: under
	// the race detector the simulation can need tens of wall seconds to
	// reach t=3s, well past whatever the tick wait above left over.
	typeDeadline := time.Now().Add(90 * time.Second)
	var g *telemetry.QueryResponse
	allCounting := false
	for time.Now().Before(typeDeadline) && !allCounting {
		g, err = c.Query(rctx, telemetry.QueryRequest{
			Machine: "dimensity-mixed-injects", Kind: "instructions", By: "type",
		})
		if err != nil {
			t.Fatal(err)
		}
		allCounting = len(g.Groups) == 3
		for _, grp := range g.Groups {
			allCounting = allCounting && grp.LastSum > 0
		}
		if !allCounting {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !allCounting {
		t.Fatalf("core-type groups never all counted instructions: %+v", g.Groups)
	}

	text, err := c.Metrics(rctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hetpapi_pkg_power_watts{machine="homogeneous-powercap"}`,
		`hetpapi_counter_total{machine="dimensity-mixed-injects"`,
		"# TYPE hetpapid_overhead_per_tick_seconds gauge",
		`hetpapid_ticks_total{machine="dimensity-mixed-injects"}`,
		`hetpapiprof_samples_emitted_total{machine="dimensity-mixed-injects"}`,
		`hetpapiprof_samples_lost_total{machine="homogeneous-powercap"}`,
		`hetpapid_http_requests_total{endpoint="/health",class="2xx"}`,
		`hetpapid_http_slo_attainment_pct{endpoint="/machines"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The serving path reports on itself: /status carries per-endpoint
	// accounting for the traffic this test has generated, judged against
	// the configured SLO targets.
	status, err := c.Status(rctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.Requests == 0 || status.SLOLatencyMs != 250 || status.SLOErrorPct != 1 {
		t.Fatalf("serving status %+v", status)
	}
	foundQuery := false
	for _, es := range status.Endpoints {
		if es.Endpoint == "/query" {
			foundQuery = true
			if es.Requests == 0 || es.StatusClass["2xx"] == 0 || es.P99Ms <= 0 {
				t.Fatalf("/query serving stats %+v", es)
			}
		}
	}
	if !foundQuery {
		t.Fatalf("/query missing from serving status: %+v", status.Endpoints)
	}

	// With tracing enabled the serving path records per-request spans,
	// served as Perfetto JSON under the reserved machine id "http".
	resp0, err := http.Get("http://" + addr + "/trace?machine=http")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, err := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	if err != nil || resp0.StatusCode != 200 {
		t.Fatalf("http trace fetch: status %d, err %v", resp0.StatusCode, err)
	}
	if !strings.Contains(string(traceBody), `"http./health"`) {
		t.Fatalf("serving trace missing request spans: %.200s", traceBody)
	}

	// The profiler endpoint serves a decodable pprof profile with samples
	// from the hybrid machine, and its counters stream as profile/* series.
	resp, err := http.Get("http://" + addr + "/profile?machine=dimensity-mixed-injects")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("profile fetch: status %d, err %v", resp.StatusCode, err)
	}
	d, err := profile.DecodePprof(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("served profile does not decode: %v", err)
	}
	if len(d.SampleTypes) != 3 {
		t.Fatalf("served profile sample types: %+v", d.SampleTypes)
	}
	pq, err := c.Query(rctx, telemetry.QueryRequest{
		Machine: "dimensity-mixed-injects", Series: "profile/emitted", Agg: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Points) == 0 || pq.Aggregate == nil || pq.Aggregate.Last == 0 {
		t.Fatalf("profile/emitted series empty: %+v", pq)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if _, err := c.Health(rctx); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// testWriter routes daemon logs into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// TestDaemonFleetEndpoint boots the daemon with a small fleet enabled
// (no scenario loop) and polls /fleet until the first roll-up lands:
// the report must cover every machine and carry the fleet digest.
func TestDaemonFleetEndpoint(t *testing.T) {
	cfg := config{
		addr:         "127.0.0.1:0",
		scenarios:    "homogeneous-powercap",
		capacity:     256,
		downsample:   1,
		shards:       2,
		every:        1,
		loop:         false,
		reqTimeout:   5 * time.Second,
		fleetN:       8,
		fleetSeed:    7,
		fleetStagger: 0.3,
		fleetChaos:   0.5,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, testWriter{t}, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	var info fleet.FleetInfo
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/fleet")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 200 {
			if err := json.Unmarshal(body, &info); err != nil {
				t.Fatalf("bad /fleet body %s: %v", body, err)
			}
			if info.Report != nil {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if info.Report == nil {
		t.Fatal("no fleet report appeared at /fleet")
	}
	if info.Report.Machines != 8 || info.Report.Seed != 7 || len(info.Report.Digest) != 64 {
		t.Fatalf("fleet report %+v", info.Report)
	}
	if info.Report.Completed+info.Report.Stopped+info.Report.Skipped != 8 {
		t.Fatalf("fleet outcomes do not cover all machines: %+v", info.Report)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonValidateEndpoint: a daemon started with -validate must
// publish a passing all-model scorecard at /validate shortly after
// startup.
func TestDaemonValidateEndpoint(t *testing.T) {
	cfg := config{
		addr:       "127.0.0.1:0",
		scenarios:  "homogeneous-powercap",
		capacity:   256,
		downsample: 1,
		shards:     2,
		every:      1,
		loop:       false,
		reqTimeout: 5 * time.Second,
		validate:   true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, testWriter{t}, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	var card validate.Scorecard
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/validate")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 200 {
			if err := json.Unmarshal(body, &card); err != nil {
				t.Fatalf("bad /validate body %s: %v", body, err)
			}
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if card.Summary.Rows == 0 {
		t.Fatal("no scorecard appeared at /validate")
	}
	if card.Summary.Failed != 0 {
		t.Fatalf("startup scorecard has %d failing rows", card.Summary.Failed)
	}
	if len(card.Models) != 4 || len(card.Digest) != 64 {
		t.Fatalf("scorecard models %v digest %q", card.Models, card.Digest)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
