// Command hetpapid is the telemetry collector daemon: it runs one or more
// reference scenarios concurrently (one collector goroutine per simulated
// machine), streams every tick's hybrid counters, power, energy,
// frequency and temperature into the sharded time-series store, and
// serves live queries over HTTP while collection is hot:
//
//	GET /health            liveness + store totals
//	GET /machines          per-machine collector status and self-overhead
//	GET /series?machine=M  series inventory
//	GET /query?machine=M&series=power_w&agg=1
//	GET /query?machine=M&kind=instructions&by=type
//	GET /degradations      latest probe degradation tallies per machine
//	GET /trace?machine=M   live span trace as Perfetto JSON
//	GET /profile?machine=M statistical profile as gzipped pprof proto
//	GET /fleet             latest fleet roll-up report (with -fleet N)
//	GET /fleet/query       population aggregates over the streamed fleet
//	GET /fleet/ui          self-contained live fleet dashboard
//	GET /validate          startup counter-accuracy scorecard
//	GET /metrics           Prometheus-style text exposition
//	GET /status            serving-path telemetry: per-endpoint latency,
//	                       errors, SLO attainment, slow-request ring
//
// Fault scenarios (reference scenarios carrying a Measure probe) also
// stream the probe's degradation-aware values and graceful-degradation
// tallies as measure/* and degradation/* series, surfaced by the
// /degradations view.
//
// Usage:
//
//	hetpapid [-addr :8080] [-scenarios all|name,name,...] [-loop]
//	         [-capacity N] [-downsample K] [-shards S] [-every T]
//	         [-request-timeout D] [-trace-capacity N]
//	         [-slo-latency-ms 250] [-slo-error-pct 1]
//	         [-profile] [-profile-period N] [-validate]
//	         [-fleet N] [-fleet-seed S] [-fleet-stagger W]
//	         [-fleet-chaos R] [-fleet-workers P]
//	         [-fleet-stream] [-fleet-anomaly 4.0]
//
// With -fleet N the daemon additionally runs an N-machine simulated
// fleet (default template mix, seed-derived chaos plans on a -fleet-chaos
// fraction of machines) on a bounded worker pool and serves the roll-up
// report — per-core-type aggregates across machines, the incident
// ledger, and the fleet digest — at /fleet. In loop mode each rerun
// advances the fleet seed by one.
//
// Fleet runs stream by default (-fleet-stream): every fleet machine's
// scalars, per-core-type counter totals and degradation tallies flow
// into the shared store tagged by machine id and template, downsampled
// into 1s/10s/1m rungs at ingest. /fleet/query serves population
// aggregates (per core type and kind, Welford + quantiles over any
// rung and window, filterable by template or machine prefix),
// /query?rung= serves bucketed single-series views, and /fleet/ui is a
// dependency-free live dashboard. The robust z-score anomaly detector
// (-fleet-anomaly, 0 disables) flags outlier machines per template
// population into the report. The streamer measures its own ingest
// cost and exports it as selfoverhead/* series under machine id
// "fleet"; between loop rounds the time axis advances past the
// previous round's last sample so repeated machine ids stay monotonic.
//
// Every machine also records a cross-layer span trace (scheduler exec
// spans and migrations, perf_event syscalls, fault and degradation
// events) into fixed rings; /trace?machine=M serves the current buffer
// as Chrome trace-event JSON for ui.perfetto.dev, and /metrics exports
// the hetpapid_spans_* recorder counters. -trace-capacity 0 turns the
// recorder off.
//
// The serving path measures itself in the same spirit: every request
// is accounted per endpoint (latency percentiles, status classes,
// bytes, gzip hits, a bounded slow-request ring), /status reports SLO
// attainment against the -slo-latency-ms / -slo-error-pct targets with
// burn flags, /metrics carries the hetpapid_http_* families, and with
// tracing enabled each request lands one http.<endpoint> span served
// at /trace?machine=http. The cmd/hetpapiload harness drives this
// surface under deterministic open-loop load.
//
// With -profile (the default), every machine additionally runs the
// per-core-type statistical profiler: one sampled cycles event per
// core-type PMU per workload task, drained into a period-weighted
// profile with explicit lost-sample error bounds. /profile?machine=M
// serves the last completed run's profile as a gzipped pprof
// profile.proto for `go tool pprof`, /metrics exports the
// hetpapiprof_samples_{emitted,lost}_total counters, and the cumulative
// counters stream into the store as profile/emitted and profile/lost
// series.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight scenario
// runs are stopped at the next tick boundary via the harness's external
// stop, and the HTTP server drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"hetpapi/internal/fleet"
	"hetpapi/internal/profile"
	"hetpapi/internal/scenario"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/telemetry"
	"hetpapi/internal/telemetry/httpobs"
	"hetpapi/internal/validate"
)

type config struct {
	addr       string
	scenarios  string
	capacity   int
	downsample int
	shards     int
	every      int
	loop       bool
	reqTimeout time.Duration
	traceCap   int
	sloLatMs   float64
	sloErrPct  float64
	profile    bool
	profPeriod uint64
	validate   bool

	fleetN       int
	fleetSeed    int64
	fleetStagger float64
	fleetChaos   float64
	fleetWorkers int
	fleetStream  bool
	fleetAnomaly float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "HTTP listen address")
	flag.StringVar(&cfg.scenarios, "scenarios", "all",
		"comma-separated reference scenario names to collect, or \"all\"")
	flag.IntVar(&cfg.capacity, "capacity", 4096, "per-series ring capacity (stored points)")
	flag.IntVar(&cfg.downsample, "downsample", 4, "raw samples averaged per stored point")
	flag.IntVar(&cfg.shards, "shards", 8, "store lock shards")
	flag.IntVar(&cfg.every, "every", 1, "sample every N simulator ticks")
	flag.BoolVar(&cfg.loop, "loop", true, "restart scenarios when they finish")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 5*time.Second, "per-request handler timeout")
	flag.IntVar(&cfg.traceCap, "trace-capacity", spantrace.DefaultTrackCapacity,
		"span-trace ring capacity per track, served at /trace (0 disables tracing)")
	flag.Float64Var(&cfg.sloLatMs, "slo-latency-ms", httpobs.DefaultSLOLatencyMs,
		"per-request latency SLO target in milliseconds (judged by /status)")
	flag.Float64Var(&cfg.sloErrPct, "slo-error-pct", httpobs.DefaultSLOErrorPct,
		"tolerated per-endpoint error rate in percent (judged by /status)")
	flag.BoolVar(&cfg.profile, "profile", true,
		"attach the per-core-type statistical profiler, served at /profile")
	flag.Uint64Var(&cfg.profPeriod, "profile-period", 0,
		"profiler sampling period in cycles (0 = default)")
	flag.BoolVar(&cfg.validate, "validate", true,
		"run the counter-accuracy validation suite at startup and serve the scorecard at /validate")
	flag.IntVar(&cfg.fleetN, "fleet", 0,
		"also run an N-machine fleet (default template mix) and serve its roll-up at /fleet (0 disables)")
	flag.Int64Var(&cfg.fleetSeed, "fleet-seed", 1, "fleet seed (reruns derive follow-up seeds from it in loop mode)")
	flag.Float64Var(&cfg.fleetStagger, "fleet-stagger", 0.5, "fleet cold-start stagger window (simulated seconds)")
	flag.Float64Var(&cfg.fleetChaos, "fleet-chaos", 0.25, "fraction of fleet machines that draw a chaos fault plan")
	flag.IntVar(&cfg.fleetWorkers, "fleet-workers", 0, "fleet worker pool size (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.fleetStream, "fleet-stream", true,
		"stream fleet machine series into the store (per-core-type counters, power, degradations; /fleet/query + /fleet/ui)")
	flag.Float64Var(&cfg.fleetAnomaly, "fleet-anomaly", 4.0,
		"robust z-score threshold for flagging outlier fleet machines (0 disables detection; needs -fleet-stream)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "hetpapid:", err)
		os.Exit(1)
	}
}

// resolveSpecs maps the -scenarios flag to reference specs.
func resolveSpecs(names string) ([]scenario.Spec, error) {
	all := scenario.Reference()
	if names == "all" {
		return all, nil
	}
	byName := map[string]scenario.Spec{}
	for _, spec := range all {
		byName[spec.Name] = spec
	}
	var out []scenario.Spec
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (known: %s)", name, strings.Join(knownNames(all), ", "))
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, errors.New("no scenarios selected")
	}
	return out, nil
}

func knownNames(specs []scenario.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// run starts the collectors and the HTTP server and blocks until ctx is
// cancelled (or the listener fails). When ready is non-nil it receives
// the bound listen address once serving, which lets tests use ":0".
func run(ctx context.Context, cfg config, logw io.Writer, ready chan<- string) error {
	specs, err := resolveSpecs(cfg.scenarios)
	if err != nil {
		return err
	}
	store := telemetry.NewStore(telemetry.Config{
		Capacity:   cfg.capacity,
		Downsample: cfg.downsample,
		Shards:     cfg.shards,
	})
	api := telemetry.NewServer(store, cfg.reqTimeout)
	api.SetSLO(cfg.sloLatMs, cfg.sloErrPct)
	if cfg.traceCap > 0 {
		// The serving path gets its own recorder (separate rings from the
		// machine recorders), served at /trace?machine=http.
		httpRec := spantrace.New(spantrace.Config{TrackCapacity: cfg.traceCap})
		httpRec.Enable()
		api.AttachHTTPTracer(httpRec)
	}
	fleetMon := fleet.NewMonitor()
	fleetMon.Register(api)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "hetpapid: listening on %s, collecting %s (loop=%v)\n",
		ln.Addr(), strings.Join(knownNames(specs), ", "), cfg.loop)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	runCtx, cancelRuns := context.WithCancel(ctx)
	defer cancelRuns()
	var wg sync.WaitGroup
	for _, spec := range specs {
		col := telemetry.NewCollector(store, spec.Name, cfg.every)
		api.Register(spec.Name, spec.Name, spec.Machine, col)
		var rec *spantrace.Recorder
		if cfg.traceCap > 0 {
			rec = spantrace.New(spantrace.Config{TrackCapacity: cfg.traceCap})
			rec.Enable()
			api.AttachTracer(spec.Name, rec)
		}
		var pcol *profile.Collector
		if cfg.profile {
			pcol = profile.NewCollector(nil, profile.Config{Period: cfg.profPeriod})
			api.AttachProfiler(spec.Name, pcol)
		}
		wg.Add(1)
		go func(spec scenario.Spec) {
			defer wg.Done()
			collect(runCtx, api, col, rec, pcol, store, spec, cfg, logw)
		}(spec)
	}

	if cfg.fleetN > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			collectFleet(runCtx, fleetMon, store, cfg, logw)
		}()
	}

	if cfg.validate {
		// Startup attestation: run the closed-form oracle suite over
		// every standard model and publish the accuracy scorecard at
		// /validate. Runs off the serving path — the endpoint 404s until
		// the suite (tens of milliseconds) completes.
		wg.Add(1)
		go func() {
			defer wg.Done()
			card, err := validate.BuildScorecard(validate.StandardSources())
			if err != nil {
				fmt.Fprintf(logw, "hetpapid: startup validation failed: %v\n", err)
				return
			}
			api.SetScorecard(card)
			fmt.Fprintf(logw, "hetpapid: validation scorecard: %d rows, %d failed, worst clean rel err %s (digest %s)\n",
				card.Summary.Rows, card.Summary.Failed, card.Summary.MaxCleanRel, card.Digest[:12])
		}()
	}

	httpSrv := &http.Server{Handler: api.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Stop in-flight runs at their next tick boundary, then drain
		// the HTTP server.
		cancelRuns()
		wg.Wait()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-serveErr // always http.ErrServerClosed after Shutdown
		fmt.Fprintln(logw, "hetpapid: shut down cleanly")
		return nil
	case err := <-serveErr:
		cancelRuns()
		wg.Wait()
		return err
	}
}

// collectFleet runs the daemon's fleet in its own goroutine: generate
// an N-machine fleet from the default template mix, run it on the
// bounded pool, and publish the roll-up at /fleet. With -fleet-stream
// every machine also streams its live series into the shared store
// (served by /fleet/query and the /fleet/ui dashboard), the anomaly
// detector flags outlier machines into the report, and the streaming
// pipeline's own ingest cost is exported as selfoverhead/* series. In
// loop mode each rerun advances the seed by one so consecutive reports
// cover fresh — but still fully reproducible — fleets.
func collectFleet(ctx context.Context, mon *fleet.Monitor, store *telemetry.Store, cfg config, logw io.Writer) {
	gen := fleet.GenConfig{
		Machines:   cfg.fleetN,
		StaggerSec: cfg.fleetStagger,
	}
	if cfg.fleetChaos > 0 {
		gen.Chaos = &fleet.ChaosConfig{IncidentRate: cfg.fleetChaos}
	}
	base := 0.0
	for run := 0; ctx.Err() == nil; run++ {
		gen.Seed = cfg.fleetSeed + int64(run)
		f, err := fleet.Generate(gen)
		if err != nil {
			fmt.Fprintf(logw, "hetpapid: fleet: %v\n", err)
			return
		}
		rc := fleet.RunConfig{Workers: cfg.fleetWorkers}
		if cfg.fleetStream {
			rc.Streamer = fleet.NewStreamer(store, 0)
			rc.Streamer.SetBaseSec(base)
			if cfg.fleetAnomaly > 0 {
				rc.Anomaly = &fleet.AnomalyConfig{Threshold: cfg.fleetAnomaly}
			}
		}
		mon.SetRunning(true)
		rep, err := fleet.Run(ctx, f, rc)
		mon.SetRunning(false)
		if err != nil {
			fmt.Fprintf(logw, "hetpapid: fleet: %v\n", err)
			return
		}
		var overhead *fleet.SelfOverhead
		if rc.Streamer != nil {
			o := rc.Streamer.ExportOverhead(float64(run))
			overhead = &o
			base = rc.Streamer.MaxSec() + 1
		}
		mon.SetReport(rep, overhead)
		fmt.Fprintf(logw, "hetpapid: fleet seed=%d: %d machines, %d completed, %d incidents, %d anomalies, digest %s\n",
			rep.Seed, rep.Machines, rep.Completed, len(rep.Incidents), len(rep.Anomalies), rep.Digest[:12])
		if overhead != nil {
			fmt.Fprintf(logw, "hetpapid: fleet streaming self-overhead: %d points in %.1fms (%.0f ns/point)\n",
				overhead.Points, overhead.IngestSec*1e3, overhead.NsPerPoint)
		}
		if !cfg.loop {
			return
		}
	}
}

// collect is one machine's collection goroutine: it runs the scenario
// (repeatedly in loop mode) with the telemetry hook and, when enabled,
// the machine's span recorder and statistical profiler attached, until
// the context stops it. In loop mode each run records into the same
// rings — the rings drop oldest, so /trace always serves the most
// recent window, while the profiler archives each finished run
// (/profile serves the last complete one). The profiler's cumulative
// sample counters also stream into the store as profile/* series at the
// telemetry cadence.
func collect(ctx context.Context, api *telemetry.Server, col *telemetry.Collector,
	rec *spantrace.Recorder, pcol *profile.Collector, store *telemetry.Store,
	spec scenario.Spec, cfg config, logw io.Writer) {
	every := cfg.every
	if every <= 0 {
		every = 1
	}
	var profTicks int
	for {
		run := spec
		run.StepHooks = []scenario.StepHook{col.Hook()}
		if pcol != nil {
			run.StepHooks = append(run.StepHooks, pcol.Hook(),
				func(c *scenario.Context) {
					profTicks++
					if profTicks%every != 0 {
						return
					}
					t := c.Sim.Now()
					store.Append(telemetry.Key{Machine: spec.Name, Series: "profile/emitted"},
						t, float64(pcol.EmittedTotal()))
					store.Append(telemetry.Key{Machine: spec.Name, Series: "profile/lost"},
						t, float64(pcol.LostTotal()))
				})
		}
		run.Stop = func() bool { return ctx.Err() != nil }
		run.Tracer = rec
		api.SetRunning(spec.Name, true)
		res, err := scenario.Run(run)
		api.SetRunning(spec.Name, false)
		if err != nil {
			fmt.Fprintf(logw, "hetpapid: scenario %s: %v\n", spec.Name, err)
		} else if res.Stopped {
			fmt.Fprintf(logw, "hetpapid: scenario %s: stopped after %.1fs simulated\n",
				spec.Name, res.ElapsedSec)
		}
		if ctx.Err() != nil || !cfg.loop || err != nil {
			return
		}
		col.NextRun()
	}
}
